//! The unified deterministic event loop behind all virtual-time scheduling.
//!
//! Before this module existed, four subsystems each advanced virtual time
//! with their own logic: the cluster scheduler's greedy slot recurrence,
//! the shuffle NIC model's step loop, the fault machinery's retry/backoff
//! arithmetic, and speculative execution's detection probes. The seams
//! showed twice over: the race checker had to *re-derive* happens-before
//! edges from span timings, and two reduce tasks scheduled onto the same
//! node did not contend for that node's ingress bandwidth.
//!
//! This module unifies them around one integer event loop:
//!
//! * **[`EventQueue`]** — a single priority queue of
//!   `(virtual_ns, seq, event)` tuples. Ties in virtual time break by the
//!   monotonically increasing sequence number, so the pop order is a pure
//!   function of the push order: no hash-map iteration, no floats, no
//!   wall-clock anywhere.
//! * **[`EventGraph`]** — every scheduling-level occurrence (attempt
//!   start/end, map-phase barrier, flow completion) is recorded as a node
//!   that lists its *enabling predecessors*. The happens-before edges the
//!   [`trace::race`](crate::trace::race) checker needs are read straight
//!   off this graph (see [`SchedEdge`]) instead of being reconstructed
//!   from span timings.
//! * **[`Scheduler`]** — owns the per-node slot tables and drives both
//!   placement modes:
//!   * *Reservation mode* ([`Scheduler::place_map`],
//!     [`Scheduler::place_reduce`]) reproduces the legacy greedy
//!     recurrence **bit-for-bit** — first-minimum slot choice, `start =
//!     max(slot_free, previous_attempt_end)` — so every shipped 1-fetcher
//!     figure is unchanged.
//!   * *Dynamic mode* ([`Scheduler::run_reduce_phase`]) runs reduce
//!     attempts through the event loop with **shared node ingress**: all
//!     concurrent flows into a node fair-share its bandwidth regardless of
//!     which reduce task owns them. This fixes the documented
//!     co-located-reducer bug — two reducers on one node now see each
//!     other's traffic.
//!
//! # Exact integer bandwidth sharing
//!
//! Transfer progress is tracked in units of [`SCALE32`]-scaled full-rate
//! nanoseconds, where `SCALE32 = lcm(1..=32)`. With `n` concurrent flows
//! into a node, each drains `SCALE32 / n` units per virtual nanosecond —
//! an exact integer for every `n ≤ 32` (the default shape: 2 reduce slots
//! × 16 fetchers), so schedules are deterministic with no float drift.
//! Because `SCALE32` is an exact multiple of the per-attempt scale the
//! legacy shuffle loop used (`lcm(1..=16) = 720 720`), a single attempt
//! simulated here produces the **same event times** as the legacy
//! per-attempt loop: both the remaining-work numerator and the rate
//! denominator scale by the same factor, so every `ceil` division yields
//! the identical quotient. For `n > 32` the per-flow rate floors, which
//! only ever errs toward slower transfers.
//!
//! # Documented approximations (dynamic mode only)
//!
//! * Straggler factors scale an attempt's *total* duration (as in the
//!   legacy recurrence); its flows are simulated unscaled and the node
//!   factor is applied to the resulting makespan.
//! * Speculative reduce backups re-execute with an isolated shuffle (they
//!   race the primary from a detection probe, not the phase's NIC state),
//!   exactly as before this refactor.

use crate::metrics::VNanos;
use crate::trace::{EdgeKind, TaskKind};
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap};

/// `lcm(1..=32)`: the exact-integer bandwidth-sharing scale. See the
/// module docs for why this makes the event loop drift-free.
pub const SCALE32: u128 = 144_403_552_893_600;

// ---------------------------------------------------------------------------
// Event queue
// ---------------------------------------------------------------------------

/// A deterministic min-priority queue of `(virtual_ns, seq, event)`.
///
/// Events pop in ascending `(virtual_ns, seq)` order; `seq` is assigned at
/// push time, so simultaneous events resolve in push order. The payload
/// type only needs `Ord` to satisfy the tuple ordering — two events never
/// share a `(virtual_ns, seq)` pair, so payload comparison never decides.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<(VNanos, u64, E)>>,
    seq: u64,
}

impl<E: Ord> EventQueue<E> {
    /// An empty queue; sequence numbers start at zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `ev` at virtual time `at`; returns its sequence number.
    pub fn push(&mut self, at: VNanos, ev: E) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, seq, ev)));
        seq
    }

    /// Remove and return the earliest event as `(at, seq, event)`.
    pub fn pop(&mut self) -> Option<(VNanos, u64, E)> {
        self.heap.pop().map(|Reverse(t)| t)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E: Ord> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// A deterministic min-priority queue of `(virtual_ns, job, seq, event)`
/// for multi-job serving: the serve job id joins the tie-break between
/// virtual time and push order, so simultaneous events from different
/// jobs resolve by job id — stable under any change in the order jobs
/// happen to *push* their events — and only same-job simultaneous events
/// fall back to push order. This is what makes a `textmr-serve`
/// interleaving replayable: the popped sequence is a pure function of the
/// admitted job set, never of driver-side enumeration order.
#[derive(Debug)]
pub struct JobEventQueue<E> {
    heap: BinaryHeap<Reverse<(VNanos, usize, u64, E)>>,
    seq: u64,
}

impl<E: Ord> JobEventQueue<E> {
    /// An empty queue; sequence numbers start at zero.
    pub fn new() -> Self {
        JobEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `ev` for `job` at virtual time `at`; returns its sequence
    /// number.
    pub fn push(&mut self, at: VNanos, job: usize, ev: E) -> u64 {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Reverse((at, job, seq, ev)));
        seq
    }

    /// Remove and return the earliest event as `(at, job, seq, event)`.
    pub fn pop(&mut self) -> Option<(VNanos, usize, u64, E)> {
        self.heap.pop().map(|Reverse(t)| t)
    }

    /// Virtual time of the earliest pending event, without removing it.
    /// Lets a driver drain one same-instant batch before acting on it.
    pub fn peek_time(&self) -> Option<VNanos> {
        self.heap.peek().map(|Reverse((at, _, _, _))| *at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<E: Ord> Default for JobEventQueue<E> {
    fn default() -> Self {
        JobEventQueue::new()
    }
}

// ---------------------------------------------------------------------------
// Event graph
// ---------------------------------------------------------------------------

/// What a recorded event graph node represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A task attempt began executing on its scheduled slot.
    AttemptStart {
        /// Map or reduce phase.
        kind: TaskKind,
        /// Task id within its phase.
        task: usize,
        /// Zero-based attempt number (0 for backups).
        attempt: usize,
        /// True for a speculative backup attempt.
        backup: bool,
    },
    /// A task attempt released its slot.
    AttemptEnd {
        /// Map or reduce phase.
        kind: TaskKind,
        /// Task id within its phase.
        task: usize,
        /// Zero-based attempt number (0 for backups).
        attempt: usize,
        /// True for a speculative backup attempt.
        backup: bool,
    },
    /// All map attempts (including backups) completed; reduce slots open.
    MapPhaseEnd,
    /// One shuffle flow of a reduce attempt finished (dynamic mode).
    FlowFinish {
        /// The owning reduce task.
        task: usize,
        /// Flow index == source map task id.
        flow: usize,
    },
    /// A DAG round boundary: every attempt of rounds `< round` completed
    /// before any attempt of `round` starts. Enabled by all prior attempt
    /// ends; an enabling predecessor of every later attempt.
    RoundBoundary {
        /// The round that opens at this boundary (1-based; round 0 has no
        /// boundary — single-round jobs record the legacy graph
        /// unchanged).
        round: usize,
    },
}

/// Index of a node in an [`EventGraph`].
pub type EventId = usize;

/// One event with the events that enabled it.
#[derive(Debug, Clone)]
pub struct EventNode {
    /// Virtual time the event occurred.
    pub at: VNanos,
    /// What happened.
    pub kind: EventKind,
    /// Enabling predecessors: this event could not occur before any of
    /// them. Ground truth for happens-before edges.
    pub preds: Vec<EventId>,
}

/// The happens-before structure of one simulated job, recorded as events
/// with enabling-predecessor lists.
#[derive(Debug, Clone, Default)]
pub struct EventGraph {
    /// All recorded events, in recording order.
    pub nodes: Vec<EventNode>,
}

impl EventGraph {
    /// Record an event; returns its id for use as a later predecessor.
    pub fn push(&mut self, at: VNanos, kind: EventKind, preds: Vec<EventId>) -> EventId {
        self.nodes.push(EventNode { at, kind, preds });
        self.nodes.len() - 1
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

// ---------------------------------------------------------------------------
// Scheduler-level edge reporting
// ---------------------------------------------------------------------------

/// Identity of one task attempt, the unit the trace's entry list indexes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct AttemptKey {
    /// Map or reduce phase.
    pub kind: TaskKind,
    /// Task id within its phase.
    pub task: usize,
    /// Zero-based attempt number (0 for backups).
    pub attempt: usize,
    /// True for a speculative backup attempt.
    pub backup: bool,
}

/// A happens-before edge between two attempts, read off the event graph.
///
/// `kind` is one of the entry-level [`EdgeKind`]s — [`EdgeKind::Slot`]
/// (previous slot occupant → next), [`EdgeKind::Retry`] (attempt *k* →
/// attempt *k+1*), or [`EdgeKind::Backup`] (origin attempt → its
/// speculative backup).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedEdge {
    /// Which ordering relation this edge asserts.
    pub kind: EdgeKind,
    /// The attempt that must come first.
    pub src: AttemptKey,
    /// The attempt it enables.
    pub dst: AttemptKey,
}

// ---------------------------------------------------------------------------
// Flows and reduce attempts (dynamic-mode inputs)
// ---------------------------------------------------------------------------

/// One shuffle fetch as the NIC model sees it: fixed pre work (disk read,
/// then retry backoff), an optional network flow (latency, then bytes at
/// the shared rate), fixed post work (decompress).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Flow {
    /// Measured disk-read nanoseconds (fixed pre work).
    pub io_ns: u64,
    /// Deterministic virtual retry backoff, charged before the flow like
    /// the legacy accounting (the fetcher holds its slot while backing
    /// off).
    pub backoff_ns: u64,
    /// True when the source node differs from the destination node.
    pub remote: bool,
    /// One-way network latency (remote flows only).
    pub latency_ns: u64,
    /// Transfer time at full NIC bandwidth (remote flows only).
    pub rate_ns: u64,
    /// Measured decompress nanoseconds (fixed post work).
    pub post_ns: u64,
}

impl Flow {
    /// Total fixed pre-flow time: disk read plus retry backoff.
    pub fn pre_ns(&self) -> u64 {
        self.io_ns.saturating_add(self.backoff_ns)
    }

    /// The flow's cost when it has the NIC to itself.
    pub fn isolated_ns(&self) -> u64 {
        let net = if self.remote {
            self.latency_ns.saturating_add(self.rate_ns)
        } else {
            0
        };
        self.pre_ns()
            .saturating_add(net)
            .saturating_add(self.post_ns)
    }
}

/// Phase boundaries of one completed flow, attempt-relative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowSched {
    /// Flow index (== map task id for real shuffles).
    pub flow: usize,
    /// Fetcher sub-slot the flow ran on.
    pub slot: usize,
    /// Pre work (disk read + backoff) began.
    pub start: VNanos,
    /// Pre work ended; latency began (remote) or collapsed (local).
    pub pre_end: VNanos,
    /// Latency ended; transfer began. Equals `pre_end` for local flows.
    pub latency_end: VNanos,
    /// Transfer drained. Equals `pre_end` for local flows.
    pub transfer_end: VNanos,
    /// Post work (decompress) ended; the sub-slot freed.
    pub finish: VNanos,
}

/// One reduce attempt as scheduled by the dynamic event loop.
#[derive(Debug, Clone)]
pub enum ReduceAttempt {
    /// A failed or dead attempt: occupies its slot for a fixed duration
    /// (unscaled; the scheduler applies the node's straggler factor).
    Block {
        /// The attempt's virtual duration before it died.
        dur: VNanos,
    },
    /// The attempt of record: shuffle flows followed by fixed post-shuffle
    /// work (merge + combine + reduce + write).
    Work {
        /// One flow per map output, in map-task-id order.
        flows: Vec<Flow>,
        /// Post-shuffle virtual time (unscaled).
        post_ns: VNanos,
    },
}

/// The shuffle portion of a completed `Work` attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttemptShuffle {
    /// Shuffle makespan under shared node ingress, attempt-relative and
    /// unscaled.
    pub virtual_ns: VNanos,
    /// Straggler tail: time the attempt was stalled on its single slowest
    /// source while every other fetcher was idle.
    pub wait_ns: VNanos,
    /// Per-flow phase boundaries, in completion order (attempt-relative).
    pub flows: Vec<FlowSched>,
}

/// Where and when one attempt ran.
#[derive(Debug, Clone)]
pub struct AttemptOutcome {
    /// Reduce slot index on the attempt's node.
    pub slot: usize,
    /// Absolute virtual start.
    pub start: VNanos,
    /// Absolute virtual end (straggler factor applied).
    pub end: VNanos,
    /// The shuffle schedule, for `Work` attempts only.
    pub shuffle: Option<AttemptShuffle>,
}

/// A static placement from reservation mode: `(slot, start, end)` exactly
/// as the legacy greedy recurrence computed it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Placement {
    /// Slot index on the attempt's node.
    pub slot: usize,
    /// Absolute virtual start.
    pub start: VNanos,
    /// Absolute virtual end (straggler factor applied).
    pub end: VNanos,
}

/// Cluster dimensions the scheduler needs.
#[derive(Debug, Clone, Copy)]
pub struct ClusterShape {
    /// Number of nodes.
    pub nodes: usize,
    /// Map slots per node.
    pub map_slots: usize,
    /// Reduce slots per node.
    pub reduce_slots: usize,
    /// Parallel shuffle fetchers per reduce attempt (pre-clamp).
    pub fetchers: usize,
}

// ---------------------------------------------------------------------------
// Scheduler
// ---------------------------------------------------------------------------

/// The unified virtual-time scheduler: slot tables, the event graph, and
/// both placement modes (legacy-exact reservation and dynamic
/// shared-ingress simulation). See the module docs for the overall shape.
#[derive(Debug)]
pub struct Scheduler {
    shape: ClusterShape,
    /// Per-node straggler factor (≥ 1), from the fault plan.
    factors: Vec<u64>,
    graph: EventGraph,
    edges: Vec<SchedEdge>,
    map_free: Vec<Vec<VNanos>>,
    map_last: Vec<Vec<Option<(EventId, AttemptKey)>>>,
    reduce_free: Vec<Vec<VNanos>>,
    reduce_last: Vec<Vec<Option<(EventId, AttemptKey)>>>,
    map_phase_ev: Option<EventId>,
    round_ev: Option<EventId>,
    reduce_phase_start: VNanos,
    /// Every recorded attempt, in the order it entered the graph.
    attempts: Vec<AttemptRecord>,
}

/// One attempt as recorded in the scheduler's log: its identity, where it
/// ran, and its start/end events in the graph. The log is in record order
/// (chronological per slot), which is what the driver walks to emit
/// [`EdgeKind::Slot`] chains between the attempts that made it into a
/// trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttemptRecord {
    /// The attempt's identity.
    pub key: AttemptKey,
    /// Node the attempt ran on.
    pub node: usize,
    /// Slot index within the node (map and reduce slots are separate
    /// tables).
    pub slot: usize,
    /// The attempt's start event in the graph.
    pub start_ev: EventId,
    /// The attempt's end event in the graph.
    pub end_ev: EventId,
}

impl Scheduler {
    /// A scheduler for `shape` with per-node straggler `factors` (missing
    /// entries and zeros are treated as 1).
    pub fn new(shape: ClusterShape, factors: Vec<u64>) -> Self {
        let nodes = shape.nodes.max(1);
        let map_slots = shape.map_slots.max(1);
        let reduce_slots = shape.reduce_slots.max(1);
        Scheduler {
            shape: ClusterShape {
                nodes,
                map_slots,
                reduce_slots,
                fetchers: shape.fetchers,
            },
            factors,
            graph: EventGraph::default(),
            edges: Vec::new(),
            map_free: vec![vec![0; map_slots]; nodes],
            map_last: vec![vec![None; map_slots]; nodes],
            reduce_free: vec![vec![0; reduce_slots]; nodes],
            reduce_last: vec![vec![None; reduce_slots]; nodes],
            map_phase_ev: None,
            round_ev: None,
            reduce_phase_start: 0,
            attempts: Vec::new(),
        }
    }

    /// The node's straggler factor applied to a duration.
    fn scale(&self, node: usize, ns: VNanos) -> VNanos {
        ns.saturating_mul(self.factors.get(node).copied().unwrap_or(1).max(1))
    }

    /// First minimum: the lowest-indexed slot with the earliest free time
    /// (the legacy recurrence's `min_by_key` tie-break).
    fn argmin(free: &[VNanos]) -> usize {
        let mut best = 0;
        for (i, &f) in free.iter().enumerate().skip(1) {
            if f < free[best] {
                best = i;
            }
        }
        best
    }

    /// Record one attempt's events, predecessors, slot chain, and edges.
    fn record_attempt(
        &mut self,
        key: AttemptKey,
        node: usize,
        slot: usize,
        start: VNanos,
        end: VNanos,
        origin: Option<AttemptKey>,
    ) -> EventId {
        let mut preds = Vec::new();
        let last = match key.kind {
            TaskKind::Map => &mut self.map_last[node][slot],
            TaskKind::Reduce => &mut self.reduce_last[node][slot],
        };
        let slot_src = *last;
        if let Some((ev, _)) = slot_src {
            preds.push(ev);
        }
        if key.attempt > 0 && !key.backup {
            if let Some(prev) = self.find_attempt(AttemptKey {
                attempt: key.attempt - 1,
                ..key
            }) {
                preds.push(prev.end_ev);
                self.edges.push(SchedEdge {
                    kind: EdgeKind::Retry,
                    src: AttemptKey {
                        attempt: key.attempt - 1,
                        ..key
                    },
                    dst: key,
                });
            }
        }
        if key.kind == TaskKind::Reduce {
            if let Some(mp) = self.map_phase_ev {
                preds.push(mp);
            }
        }
        if let Some(rb) = self.round_ev {
            preds.push(rb);
        }
        if let Some(o) = origin {
            if let Some(orig) = self.find_attempt(o) {
                preds.push(orig.start_ev);
            }
            self.edges.push(SchedEdge {
                kind: EdgeKind::Backup,
                src: o,
                dst: key,
            });
        }
        if let Some((_, prev_key)) = slot_src {
            self.edges.push(SchedEdge {
                kind: EdgeKind::Slot,
                src: prev_key,
                dst: key,
            });
        }
        let start_ev = self.graph.push(
            start,
            EventKind::AttemptStart {
                kind: key.kind,
                task: key.task,
                attempt: key.attempt,
                backup: key.backup,
            },
            preds,
        );
        let end_ev = self.graph.push(
            end,
            EventKind::AttemptEnd {
                kind: key.kind,
                task: key.task,
                attempt: key.attempt,
                backup: key.backup,
            },
            vec![start_ev],
        );
        let (free, last) = match key.kind {
            TaskKind::Map => (&mut self.map_free, &mut self.map_last),
            TaskKind::Reduce => (&mut self.reduce_free, &mut self.reduce_last),
        };
        free[node][slot] = free[node][slot].max(end);
        last[node][slot] = Some((end_ev, key));
        self.attempts.push(AttemptRecord {
            key,
            node,
            slot,
            start_ev,
            end_ev,
        });
        start_ev
    }

    fn find_attempt(&self, key: AttemptKey) -> Option<&AttemptRecord> {
        self.attempts.iter().find(|a| a.key == key)
    }

    /// The attempt log, in record order (chronological per slot).
    pub fn attempts(&self) -> &[AttemptRecord] {
        &self.attempts
    }

    /// The attempt-level happens-before edges recorded so far.
    pub fn sched_edges(&self) -> &[SchedEdge] {
        &self.edges
    }

    /// Place every attempt of map task `task` with the legacy greedy
    /// recurrence (first-minimum slot, `start = max(slot_free,
    /// prev_attempt_end)`, durations scaled by the node factor).
    pub fn place_map(&mut self, task: usize, node: usize, durs: &[VNanos]) -> Vec<Placement> {
        let mut out = Vec::with_capacity(durs.len());
        let mut prev_end = 0;
        for (attempt, &dur) in durs.iter().enumerate() {
            let slot = Self::argmin(&self.map_free[node]);
            let start = self.map_free[node][slot].max(prev_end);
            let end = start.saturating_add(self.scale(node, dur));
            self.record_attempt(
                AttemptKey {
                    kind: TaskKind::Map,
                    task,
                    attempt,
                    backup: false,
                },
                node,
                slot,
                start,
                end,
                None,
            );
            prev_end = end;
            out.push(Placement { slot, start, end });
        }
        out
    }

    /// The earliest-free slot on `node` for a speculative backup probe:
    /// `(slot, free_time)` without committing anything.
    pub fn probe_backup(&self, kind: TaskKind, node: usize) -> (usize, VNanos) {
        let free = match kind {
            TaskKind::Map => &self.map_free[node],
            TaskKind::Reduce => &self.reduce_free[node],
        };
        let slot = Self::argmin(free);
        (slot, free[slot])
    }

    /// Commit a speculative backup attempt at an explicit `(start, end)`
    /// (the driver decides win/lose/dead and hence the end). Records a
    /// [`EdgeKind::Backup`] edge from `origin`.
    pub fn commit_backup(
        &mut self,
        key: AttemptKey,
        origin: AttemptKey,
        node: usize,
        slot: usize,
        start: VNanos,
        end: VNanos,
    ) {
        self.record_attempt(key, node, slot, start, end, Some(origin));
        let free = match key.kind {
            TaskKind::Map => &mut self.map_free,
            TaskKind::Reduce => &mut self.reduce_free,
        };
        // The legacy speculation code *sets* the slot free time (a losing
        // backup may end before the slot's prior reservation).
        free[node][slot] = end;
    }

    /// Open DAG round `round` (1-based) at virtual instant `origin` — the
    /// end of the previous round's last reduce attempt. Records a
    /// [`EventKind::RoundBoundary`] enabled by every attempt so far and
    /// raises all slot free times to at least `origin`, so cross-round
    /// virtual time is continuous: round-`k+1` work starts no earlier
    /// than the round-`k` outputs it consumes. Never called for round 0,
    /// which keeps single-round jobs bit-identical to the legacy path.
    pub fn begin_round(&mut self, round: usize, origin: VNanos) {
        let preds = self.attempts.iter().map(|a| a.end_ev).collect();
        self.round_ev = Some(
            self.graph
                .push(origin, EventKind::RoundBoundary { round }, preds),
        );
        self.map_phase_ev = None;
        for free in self.map_free.iter_mut().chain(self.reduce_free.iter_mut()) {
            for slot in free.iter_mut() {
                *slot = (*slot).max(origin);
            }
        }
    }

    /// Open the reduce phase: all reduce slots free at `map_phase_end`,
    /// and the barrier event (enabled by every map attempt recorded so
    /// far) enters the graph.
    pub fn begin_reduce_phase(&mut self, map_phase_end: VNanos) {
        let preds = self
            .attempts
            .iter()
            .filter(|a| a.key.kind == TaskKind::Map)
            .map(|a| a.end_ev)
            .collect();
        self.map_phase_ev = Some(
            self.graph
                .push(map_phase_end, EventKind::MapPhaseEnd, preds),
        );
        self.reduce_phase_start = map_phase_end;
        for node in &mut self.reduce_free {
            for slot in node.iter_mut() {
                *slot = map_phase_end;
            }
        }
    }

    /// Place every attempt of reduce task `task` with the legacy greedy
    /// recurrence — the bit-identical 1-fetcher path.
    pub fn place_reduce(&mut self, task: usize, node: usize, durs: &[VNanos]) -> Vec<Placement> {
        let mut out = Vec::with_capacity(durs.len());
        let mut prev_end = 0;
        for (attempt, &dur) in durs.iter().enumerate() {
            let slot = Self::argmin(&self.reduce_free[node]);
            let start = self.reduce_free[node][slot].max(prev_end);
            let end = start.saturating_add(self.scale(node, dur));
            self.record_attempt(
                AttemptKey {
                    kind: TaskKind::Reduce,
                    task,
                    attempt,
                    backup: false,
                },
                node,
                slot,
                start,
                end,
                None,
            );
            prev_end = end;
            out.push(Placement { slot, start, end });
        }
        out
    }

    /// Run the whole reduce phase through the dynamic event loop with
    /// shared node ingress. `tasks[r] = (node, attempts)`; returns one
    /// [`AttemptOutcome`] per attempt per task. Call
    /// [`Scheduler::begin_reduce_phase`] first.
    pub fn run_reduce_phase(
        &mut self,
        tasks: Vec<(usize, Vec<ReduceAttempt>)>,
    ) -> Vec<Vec<AttemptOutcome>> {
        self.run_reduce_phase_from(0, tasks)
    }

    /// [`Scheduler::run_reduce_phase`] with a global task-id base: attempt
    /// and flow-finish events are recorded as task `base + r`, keeping
    /// keys unique when a DAG job runs several rounds through one
    /// scheduler. `base = 0` is the single-round path.
    pub fn run_reduce_phase_from(
        &mut self,
        base: usize,
        tasks: Vec<(usize, Vec<ReduceAttempt>)>,
    ) -> Vec<Vec<AttemptOutcome>> {
        let nodes: Vec<usize> = tasks.iter().map(|(n, _)| *n).collect();
        let outcomes = ReduceSim::new(
            self.shape.nodes,
            self.shape.reduce_slots,
            self.shape.fetchers,
            self.factors.clone(),
            tasks,
        )
        .run(self.reduce_phase_start);
        // Record events/edges in chronological order so slot chains and
        // retry predecessors resolve, then the flow-finish nodes.
        let mut order: Vec<(VNanos, usize, usize)> = Vec::new();
        for (task, outs) in outcomes.iter().enumerate() {
            for (attempt, o) in outs.iter().enumerate() {
                order.push((o.start, task, attempt));
            }
        }
        order.sort();
        for (_, task, attempt) in order {
            let o = &outcomes[task][attempt];
            let key = AttemptKey {
                kind: TaskKind::Reduce,
                task: base + task,
                attempt,
                backup: false,
            };
            let start_ev = self.record_attempt(key, nodes[task], o.slot, o.start, o.end, None);
            if let Some(sh) = &outcomes[task][attempt].shuffle {
                for f in &sh.flows {
                    let at = o
                        .start
                        .saturating_add(self.scale(nodes[task], f.finish))
                        .min(o.end);
                    self.graph.push(
                        at,
                        EventKind::FlowFinish {
                            task: base + task,
                            flow: f.flow,
                        },
                        vec![start_ev],
                    );
                }
            }
        }
        outcomes
    }

    /// Consume the scheduler, yielding the event graph and the
    /// attempt-level happens-before edges read off it.
    pub fn into_parts(self) -> (EventGraph, Vec<SchedEdge>) {
        (self.graph, self.edges)
    }
}

/// Simulate one reduce attempt's shuffle in isolation: a single node with
/// one reduce slot, starting at virtual time zero. This is the event-loop
/// replacement for the legacy per-attempt NIC step loop and produces the
/// same schedule bit-for-bit (see the module docs).
pub fn simulate_attempt_flows(flows: &[Flow], fetchers: usize) -> AttemptShuffle {
    let mut outcomes = ReduceSim::new(
        1,
        1,
        fetchers,
        vec![1],
        vec![(
            0,
            vec![ReduceAttempt::Work {
                flows: flows.to_vec(),
                post_ns: 0,
            }],
        )],
    )
    .run(0);
    outcomes
        .pop()
        .and_then(|mut a| a.pop())
        .and_then(|o| o.shuffle)
        .unwrap_or(AttemptShuffle {
            virtual_ns: 0,
            wait_ns: 0,
            flows: Vec::new(),
        })
}

// ---------------------------------------------------------------------------
// Dynamic reduce-phase simulation
// ---------------------------------------------------------------------------

/// Internal events driving the dynamic reduce phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum SimEv {
    /// A fixed-duration phase (pre / latency / decompress) of `task`'s
    /// fetcher sub-slot `sub` completes.
    FixedDone { task: usize, sub: usize },
    /// Estimated earliest transfer completion on `node`; stale (ignored)
    /// unless the epoch still matches.
    NicDue { node: usize, epoch: u64 },
    /// `task`'s running attempt releases its reduce slot.
    SlotFree { task: usize },
}

/// Which phase a fetcher sub-slot's current flow is in. Each variant's
/// handler runs when that phase *completes*.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    Pre,
    Latency,
    Transfer,
    Post,
}

#[derive(Debug, Clone, Copy)]
struct SubSlot {
    flow: usize,
    phase: Phase,
    start: VNanos,
    pre_end: VNanos,
    latency_end: VNanos,
    transfer_end: VNanos,
}

/// A transfer currently sharing a node's ingress.
#[derive(Debug, Clone, Copy)]
struct Active {
    task: usize,
    sub: usize,
    /// Remaining work in `SCALE32`-scaled full-rate nanoseconds.
    remaining: u128,
}

/// One node's shared ingress NIC, advanced lazily.
#[derive(Debug, Default)]
struct Nic {
    now: VNanos,
    epoch: u64,
    active: Vec<Active>,
}

impl Nic {
    /// Deplete all active transfers up to `t` at the current shared rate.
    /// Must be called before any mutation of `active` at time `t`.
    fn advance(&mut self, t: VNanos) {
        if t > self.now {
            let n = self.active.len();
            if n > 0 {
                let dep = (t - self.now) as u128 * (SCALE32 / n as u128);
                for a in &mut self.active {
                    a.remaining = a.remaining.saturating_sub(dep);
                }
            }
        }
        self.now = self.now.max(t);
    }
}

/// A running `Work` attempt's fetcher state.
#[derive(Debug)]
struct RunWork {
    flows: Vec<Flow>,
    post_ns: VNanos,
    f: usize,
    subs: Vec<Option<SubSlot>>,
    next_flow: usize,
    live: usize,
    wait_ns: VNanos,
    tail_mark: Option<VNanos>,
    sched: Vec<FlowSched>,
}

#[derive(Debug)]
struct SimTask {
    node: usize,
    attempts: Vec<ReduceAttempt>,
    next: usize,
    cur: Option<(usize, VNanos)>,
    run: Option<RunWork>,
    pending_shuffle: Option<AttemptShuffle>,
}

#[derive(Debug, Clone, Copy)]
struct SimSlot {
    free_at: VNanos,
    occupant: Option<usize>,
}

struct ReduceSim {
    fetchers: usize,
    factors: Vec<u64>,
    queue: EventQueue<SimEv>,
    nics: Vec<Nic>,
    nic_dirty: Vec<bool>,
    tasks: Vec<SimTask>,
    ready: Vec<BTreeSet<usize>>,
    slots: Vec<Vec<SimSlot>>,
    outcomes: Vec<Vec<AttemptOutcome>>,
}

impl ReduceSim {
    fn new(
        nodes: usize,
        reduce_slots: usize,
        fetchers: usize,
        factors: Vec<u64>,
        tasks: Vec<(usize, Vec<ReduceAttempt>)>,
    ) -> Self {
        let nodes = nodes.max(1);
        let n_tasks = tasks.len();
        let mut ready = vec![BTreeSet::new(); nodes];
        let sim_tasks: Vec<SimTask> = tasks
            .into_iter()
            .enumerate()
            .map(|(t, (node, attempts))| {
                let node = node % nodes;
                if !attempts.is_empty() {
                    ready[node].insert(t);
                }
                SimTask {
                    node,
                    attempts,
                    next: 0,
                    cur: None,
                    run: None,
                    pending_shuffle: None,
                }
            })
            .collect();
        ReduceSim {
            fetchers,
            factors,
            queue: EventQueue::new(),
            nics: (0..nodes).map(|_| Nic::default()).collect(),
            nic_dirty: vec![false; nodes],
            tasks: sim_tasks,
            ready,
            slots: vec![
                vec![
                    SimSlot {
                        free_at: 0,
                        occupant: None
                    };
                    reduce_slots.max(1)
                ];
                nodes
            ],
            outcomes: vec![Vec::new(); n_tasks],
        }
    }

    fn factor(&self, node: usize) -> u64 {
        self.factors.get(node).copied().unwrap_or(1).max(1)
    }

    fn run(mut self, t0: VNanos) -> Vec<Vec<AttemptOutcome>> {
        for node in self.slots.iter_mut().flatten() {
            node.free_at = t0;
        }
        for nic in &mut self.nics {
            nic.now = t0;
        }
        for node in 0..self.nics.len() {
            self.dispatch(node, t0);
        }
        self.flush_nics();
        while let Some((t, _seq, ev)) = self.queue.pop() {
            match ev {
                SimEv::FixedDone { task, sub } => {
                    self.phase_done(task, sub, t);
                    self.claim(task, t);
                    self.retally(task, t);
                    self.check_shuffle_done(task, t);
                }
                SimEv::NicDue { node, epoch } => {
                    if self.nics[node].epoch != epoch {
                        continue;
                    }
                    self.nics[node].advance(t);
                    let mut finished = Vec::new();
                    self.nics[node].active.retain(|a| {
                        if a.remaining == 0 {
                            finished.push((a.task, a.sub));
                            false
                        } else {
                            true
                        }
                    });
                    self.nic_dirty[node] = true;
                    let mut touched: Vec<usize> = Vec::new();
                    for (task, sub) in finished {
                        self.phase_done(task, sub, t);
                        if !touched.contains(&task) {
                            touched.push(task);
                        }
                    }
                    for task in touched {
                        self.claim(task, t);
                        self.retally(task, t);
                        self.check_shuffle_done(task, t);
                    }
                }
                SimEv::SlotFree { task } => {
                    let node = self.tasks[task].node;
                    let (slot, start) = self.tasks[task].cur.take().expect("freeing idle task");
                    let shuffle = self.tasks[task].pending_shuffle.take();
                    self.outcomes[task].push(AttemptOutcome {
                        slot,
                        start,
                        end: t,
                        shuffle,
                    });
                    self.slots[node][slot].occupant = None;
                    self.slots[node][slot].free_at = t;
                    self.tasks[task].next += 1;
                    if self.tasks[task].next < self.tasks[task].attempts.len() {
                        self.ready[node].insert(task);
                    }
                    self.dispatch(node, t);
                }
            }
            self.flush_nics();
        }
        self.outcomes
    }

    /// Assign ready tasks (lowest id first) to free slots (earliest-freed,
    /// lowest index first) at time `t`.
    fn dispatch(&mut self, node: usize, t: VNanos) {
        loop {
            let Some(&task) = self.ready[node].iter().next() else {
                return;
            };
            let mut best: Option<usize> = None;
            for (i, s) in self.slots[node].iter().enumerate() {
                if s.occupant.is_none()
                    && best.is_none_or(|b| s.free_at < self.slots[node][b].free_at)
                {
                    best = Some(i);
                }
            }
            let Some(slot) = best else {
                return;
            };
            self.ready[node].remove(&task);
            self.slots[node][slot].occupant = Some(task);
            self.tasks[task].cur = Some((slot, t));
            let idx = self.tasks[task].next;
            match &self.tasks[task].attempts[idx] {
                ReduceAttempt::Block { dur } => {
                    let end = t.saturating_add((*dur).saturating_mul(self.factor(node)));
                    self.queue.push(end, SimEv::SlotFree { task });
                }
                ReduceAttempt::Work { .. } => {
                    let taken = std::mem::replace(
                        &mut self.tasks[task].attempts[idx],
                        ReduceAttempt::Block { dur: 0 },
                    );
                    let ReduceAttempt::Work { flows, post_ns } = taken else {
                        unreachable!("matched Work above");
                    };
                    let f = self
                        .fetchers
                        .clamp(1, crate::shuffle::MAX_FETCHERS)
                        .min(flows.len().max(1));
                    self.tasks[task].run = Some(RunWork {
                        flows,
                        post_ns,
                        f,
                        subs: vec![None; f],
                        next_flow: 0,
                        live: 0,
                        wait_ns: 0,
                        tail_mark: None,
                        sched: Vec::new(),
                    });
                    self.claim(task, t);
                    self.retally(task, t);
                    self.check_shuffle_done(task, t);
                }
            }
        }
    }

    /// Claim pending flows into free fetcher sub-slots, in sub-slot order;
    /// a fully zero-cost flow completes instantly and frees its sub-slot
    /// for the next pending flow at the same instant (the legacy cascade).
    fn claim(&mut self, task: usize, t: VNanos) {
        let Some(f) = self.tasks[task].run.as_ref().map(|r| r.f) else {
            return;
        };
        for sub in 0..f {
            loop {
                let run = self.tasks[task].run.as_mut().expect("claiming without run");
                if run.subs[sub].is_some() || run.next_flow >= run.flows.len() {
                    break;
                }
                let flow = run.next_flow;
                run.next_flow += 1;
                run.subs[sub] = Some(SubSlot {
                    flow,
                    phase: Phase::Pre,
                    start: t,
                    pre_end: t,
                    latency_end: t,
                    transfer_end: t,
                });
                run.live += 1;
                let pre = run.flows[flow].pre_ns();
                if pre > 0 {
                    self.queue
                        .push(t.saturating_add(pre), SimEv::FixedDone { task, sub });
                    break;
                }
                if !self.phase_done(task, sub, t) {
                    break;
                }
            }
        }
    }

    /// The sub-slot's current phase completed at `t`: transition forward,
    /// falling through zero-duration phases. Returns true when the flow
    /// finished and the sub-slot freed.
    fn phase_done(&mut self, task: usize, sub: usize, t: VNanos) -> bool {
        let node = self.tasks[task].node;
        loop {
            let run = self.tasks[task].run.as_mut().expect("phase without run");
            let s = run.subs[sub].as_mut().expect("phase on empty sub-slot");
            let fl = run.flows[s.flow];
            match s.phase {
                Phase::Pre => {
                    s.pre_end = t;
                    if fl.remote {
                        s.phase = Phase::Latency;
                        if fl.latency_ns > 0 {
                            self.queue.push(
                                t.saturating_add(fl.latency_ns),
                                SimEv::FixedDone { task, sub },
                            );
                            return false;
                        }
                    } else {
                        // Local flow: the latency and transfer marks
                        // collapse onto the end of the disk read.
                        s.latency_end = t;
                        s.transfer_end = t;
                        s.phase = Phase::Post;
                        if fl.post_ns > 0 {
                            self.queue
                                .push(t.saturating_add(fl.post_ns), SimEv::FixedDone { task, sub });
                            return false;
                        }
                    }
                }
                Phase::Latency => {
                    s.latency_end = t;
                    s.phase = Phase::Transfer;
                    let remaining = fl.rate_ns as u128 * SCALE32;
                    if remaining > 0 {
                        self.nics[node].advance(t);
                        self.nics[node].active.push(Active {
                            task,
                            sub,
                            remaining,
                        });
                        self.nic_dirty[node] = true;
                        return false;
                    }
                }
                Phase::Transfer => {
                    s.transfer_end = t;
                    s.phase = Phase::Post;
                    if fl.post_ns > 0 {
                        self.queue
                            .push(t.saturating_add(fl.post_ns), SimEv::FixedDone { task, sub });
                        return false;
                    }
                }
                Phase::Post => {
                    let done = run.subs[sub].take().expect("double-free of sub-slot");
                    run.live -= 1;
                    run.sched.push(FlowSched {
                        flow: done.flow,
                        slot: sub,
                        start: done.start,
                        pre_end: done.pre_end,
                        latency_end: done.latency_end,
                        transfer_end: done.transfer_end,
                        finish: t,
                    });
                    return true;
                }
            }
        }
    }

    /// Close/open the straggler-tail interval: the attempt is stalled when
    /// exactly one fetcher is busy and no flow is left to claim (the
    /// legacy wait condition, integrated between the attempt's own
    /// events).
    fn retally(&mut self, task: usize, t: VNanos) {
        let Some(run) = self.tasks[task].run.as_mut() else {
            return;
        };
        if let Some(mark) = run.tail_mark.take() {
            run.wait_ns = run.wait_ns.saturating_add(t - mark);
        }
        if run.f > 1 && run.live == 1 && run.next_flow >= run.flows.len() {
            run.tail_mark = Some(t);
        }
    }

    /// When every flow has drained, finalize the shuffle and schedule the
    /// slot release after the post-shuffle work (straggler factor applied
    /// to the whole attempt, like the legacy recurrence).
    fn check_shuffle_done(&mut self, task: usize, t: VNanos) {
        let node = self.tasks[task].node;
        let done = self.tasks[task]
            .run
            .as_ref()
            .is_some_and(|r| r.live == 0 && r.next_flow >= r.flows.len());
        if !done {
            return;
        }
        let (_, start) = self.tasks[task].cur.expect("shuffle without a slot");
        let run = self.tasks[task].run.take().expect("checked above");
        let virtual_ns = t - start;
        let flows = run
            .sched
            .into_iter()
            .map(|s| FlowSched {
                start: s.start - start,
                pre_end: s.pre_end - start,
                latency_end: s.latency_end - start,
                transfer_end: s.transfer_end - start,
                finish: s.finish - start,
                ..s
            })
            .collect();
        self.tasks[task].pending_shuffle = Some(AttemptShuffle {
            virtual_ns,
            wait_ns: run.wait_ns,
            flows,
        });
        let total = virtual_ns
            .saturating_add(run.post_ns)
            .saturating_mul(self.factor(node));
        self.queue
            .push(start.saturating_add(total), SimEv::SlotFree { task });
    }

    /// Re-estimate transfer completions on every NIC whose active set (and
    /// hence shared rate) changed; stale estimates are invalidated by the
    /// epoch bump.
    fn flush_nics(&mut self) {
        for node in 0..self.nics.len() {
            if !self.nic_dirty[node] {
                continue;
            }
            self.nic_dirty[node] = false;
            let nic = &mut self.nics[node];
            nic.epoch += 1;
            let n = nic.active.len();
            if n == 0 {
                continue;
            }
            let rate = SCALE32 / n as u128;
            let mut due = VNanos::MAX;
            for a in &nic.active {
                let dt = u64::try_from(a.remaining.div_ceil(rate)).unwrap_or(u64::MAX);
                due = due.min(nic.now.saturating_add(dt));
            }
            let epoch = nic.epoch;
            self.queue.push(due, SimEv::NicDue { node, epoch });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_queue_breaks_time_ties_by_job_then_seq() {
        let mut q: JobEventQueue<u32> = JobEventQueue::new();
        // Push order deliberately scrambles job order at equal times.
        q.push(10, 2, 20);
        q.push(10, 1, 11);
        q.push(5, 3, 30);
        q.push(10, 1, 12);
        assert_eq!(q.peek_time(), Some(5));
        let mut popped = Vec::new();
        while let Some((at, job, _seq, ev)) = q.pop() {
            popped.push((at, job, ev));
        }
        assert_eq!(q.peek_time(), None);
        assert_eq!(
            popped,
            vec![(5, 3, 30), (10, 1, 11), (10, 1, 12), (10, 2, 20)]
        );
    }

    fn remote(pre: u64, bytes_ns: u64, post: u64) -> Flow {
        Flow {
            io_ns: pre,
            backoff_ns: 0,
            remote: true,
            latency_ns: 100,
            rate_ns: bytes_ns,
            post_ns: post,
        }
    }

    fn local(pre: u64, post: u64) -> Flow {
        Flow {
            io_ns: pre,
            backoff_ns: 0,
            remote: false,
            latency_ns: 100,
            rate_ns: 0,
            post_ns: post,
        }
    }

    #[test]
    fn queue_pops_by_time_then_sequence() {
        let mut q = EventQueue::new();
        q.push(50, 1u32);
        q.push(10, 2);
        q.push(10, 3);
        q.push(0, 4);
        assert_eq!(q.len(), 4);
        let order: Vec<(VNanos, u32)> = std::iter::from_fn(|| q.pop())
            .map(|(t, _, e)| (t, e))
            .collect();
        // Simultaneous events resolve in push order (2 before 3).
        assert_eq!(order, vec![(0, 4), (10, 2), (10, 3), (50, 1)]);
        assert!(q.is_empty());
    }

    #[test]
    fn scale32_is_an_exact_multiple_of_the_legacy_scale() {
        assert_eq!(SCALE32 % 720_720, 0);
        for n in 1..=32u128 {
            assert_eq!(SCALE32 % n, 0, "SCALE32 must divide evenly by {n}");
        }
    }

    // ---- reservation mode: the legacy recurrence, bit-for-bit ------------

    #[test]
    fn reservation_matches_the_legacy_greedy_recurrence() {
        let shape = ClusterShape {
            nodes: 2,
            map_slots: 2,
            reduce_slots: 1,
            fetchers: 1,
        };
        let mut sched = Scheduler::new(shape, vec![1, 3]);
        // Node 0: two slots. Task 0 (attempts 10, 20) then task 1 (5).
        let p0 = sched.place_map(0, 0, &[10, 20]);
        // Attempt 0 → slot 0 [0,10); attempt 1 → slot 1, start
        // max(free=0, prev_end=10) = 10, end 30.
        assert_eq!(
            p0[0],
            Placement {
                slot: 0,
                start: 0,
                end: 10
            }
        );
        assert_eq!(
            p0[1],
            Placement {
                slot: 1,
                start: 10,
                end: 30
            }
        );
        let p1 = sched.place_map(1, 0, &[5]);
        // Slot 0 frees first (10 < 30).
        assert_eq!(
            p1[0],
            Placement {
                slot: 0,
                start: 10,
                end: 15
            }
        );
        // Node 1 has straggler factor 3.
        let p2 = sched.place_map(2, 1, &[7]);
        assert_eq!(
            p2[0],
            Placement {
                slot: 0,
                start: 0,
                end: 21
            }
        );

        sched.begin_reduce_phase(30);
        let r0 = sched.place_reduce(0, 0, &[4]);
        assert_eq!(
            r0[0],
            Placement {
                slot: 0,
                start: 30,
                end: 34
            }
        );

        let (graph, edges) = sched.into_parts();
        // Slot chain on node 0 slot 0: map 0 attempt 0 → map 1.
        assert!(edges.iter().any(|e| e.kind == EdgeKind::Slot
            && e.src.task == 0
            && e.src.attempt == 0
            && e.dst.task == 1));
        // Retry edge: map 0 attempt 0 → attempt 1.
        assert!(edges
            .iter()
            .any(|e| e.kind == EdgeKind::Retry && e.src.task == 0 && e.dst.attempt == 1));
        // The reduce attempt is enabled by the map-phase barrier.
        let barrier = graph
            .nodes
            .iter()
            .position(|n| n.kind == EventKind::MapPhaseEnd)
            .expect("barrier event");
        let reduce_start = graph
            .nodes
            .iter()
            .find(|n| {
                matches!(
                    n.kind,
                    EventKind::AttemptStart {
                        kind: TaskKind::Reduce,
                        ..
                    }
                )
            })
            .expect("reduce start event");
        assert!(reduce_start.preds.contains(&barrier));
    }

    #[test]
    fn backup_commit_records_a_backup_edge_and_resets_the_slot() {
        let shape = ClusterShape {
            nodes: 2,
            map_slots: 1,
            reduce_slots: 1,
            fetchers: 1,
        };
        let mut sched = Scheduler::new(shape, Vec::new());
        sched.place_map(0, 0, &[100]);
        let origin = AttemptKey {
            kind: TaskKind::Map,
            task: 0,
            attempt: 0,
            backup: false,
        };
        let (slot, free) = sched.probe_backup(TaskKind::Map, 1);
        assert_eq!((slot, free), (0, 0));
        let key = AttemptKey {
            backup: true,
            ..origin
        };
        sched.commit_backup(key, origin, 1, slot, 40, 80);
        let (graph, edges) = sched.into_parts();
        assert!(edges
            .iter()
            .any(|e| e.kind == EdgeKind::Backup && e.src == origin && e.dst == key));
        // The backup's start is enabled by the origin's start event.
        let origin_start = graph
            .nodes
            .iter()
            .position(|n| matches!(n.kind, EventKind::AttemptStart { backup: false, .. }))
            .unwrap();
        let backup_start = graph
            .nodes
            .iter()
            .find(|n| matches!(n.kind, EventKind::AttemptStart { backup: true, .. }))
            .unwrap();
        assert!(backup_start.preds.contains(&origin_start));
    }

    // ---- dynamic mode: exact agreement with the legacy NIC loop ----------

    #[test]
    fn isolated_attempt_reproduces_the_legacy_nic_examples() {
        // Two identical remote flows: latency + 2 × full-rate (they share).
        let sh = simulate_attempt_flows(&[remote(0, 1000, 0), remote(0, 1000, 0)], 2);
        assert_eq!(sh.virtual_ns, 100 + 2000);
        // Unequal flows: 300 drains after 600 shared ns, the 900 flow then
        // has 600 left at full rate; tail where only it remains is 600.
        let sh = simulate_attempt_flows(&[remote(0, 300, 0), remote(0, 900, 0)], 2);
        assert_eq!(sh.virtual_ns, 100 + 600 + 600);
        assert_eq!(sh.wait_ns, 600);
        // A local fetch overlaps a remote flow without slowing it.
        let sh = simulate_attempt_flows(&[remote(0, 1000, 0), local(500, 0)], 2);
        assert_eq!(sh.virtual_ns, 100 + 1000);
        // Local decompress occupies the fetcher sub-slot.
        let sh = simulate_attempt_flows(&[local(100, 50), local(100, 50)], 1);
        assert_eq!(sh.virtual_ns, 300);
        let sh = simulate_attempt_flows(&[local(100, 50), local(100, 50)], 2);
        assert_eq!(sh.virtual_ns, 150);
        // Zero-cost flows terminate; only the remote latency costs.
        for f in [1, 2, 4] {
            let sh = simulate_attempt_flows(&[local(0, 0), remote(0, 0, 0), local(0, 0)], f);
            assert_eq!(sh.virtual_ns, 100, "f={f}");
        }
        // Empty flow list.
        let sh = simulate_attempt_flows(&[], 4);
        assert_eq!((sh.virtual_ns, sh.wait_ns), (0, 0));
    }

    #[test]
    fn flow_phase_marks_match_the_legacy_schedule() {
        let sh = simulate_attempt_flows(&[local(100, 50), remote(100, 200, 50)], 2);
        let mut flows = sh.flows.clone();
        flows.sort_by_key(|s| s.flow);
        let l = flows[0];
        assert_eq!(
            (l.start, l.pre_end, l.latency_end, l.transfer_end, l.finish),
            (0, 100, 100, 100, 150)
        );
        let r = flows[1];
        assert_eq!(
            (r.start, r.pre_end, r.latency_end, r.transfer_end, r.finish),
            (0, 100, 200, 400, 450)
        );
        assert_eq!(sh.virtual_ns, 450);
    }

    // ---- the co-located-reducer fix --------------------------------------

    #[test]
    fn co_located_reducers_share_node_ingress() {
        let one_flow = || {
            vec![ReduceAttempt::Work {
                flows: vec![remote(0, 1000, 0)],
                post_ns: 0,
            }]
        };
        let isolated = simulate_attempt_flows(&[remote(0, 1000, 0)], 2).virtual_ns;
        assert_eq!(isolated, 100 + 1000);

        // Two reducers on ONE node: their transfers fair-share the node's
        // ingress, so each takes latency + 2 × full-rate.
        let shape = ClusterShape {
            nodes: 1,
            map_slots: 1,
            reduce_slots: 2,
            fetchers: 2,
        };
        let mut sched = Scheduler::new(shape, Vec::new());
        sched.begin_reduce_phase(0);
        let outs = sched.run_reduce_phase(vec![(0, one_flow()), (0, one_flow())]);
        for (r, outs) in outs.iter().enumerate() {
            let sh = outs[0].shuffle.as_ref().unwrap();
            assert_eq!(sh.virtual_ns, 100 + 2000, "co-located reducer {r}");
            assert!(sh.virtual_ns > isolated);
        }

        // The same two reducers on DIFFERENT nodes reproduce the isolated
        // schedule exactly.
        let shape = ClusterShape {
            nodes: 2,
            map_slots: 1,
            reduce_slots: 2,
            fetchers: 2,
        };
        let mut sched = Scheduler::new(shape, Vec::new());
        sched.begin_reduce_phase(0);
        let outs = sched.run_reduce_phase(vec![(0, one_flow()), (1, one_flow())]);
        for (r, outs) in outs.iter().enumerate() {
            let sh = outs[0].shuffle.as_ref().unwrap();
            assert_eq!(sh.virtual_ns, isolated, "separated reducer {r}");
        }
    }

    #[test]
    fn dynamic_dispatch_queues_attempts_and_frees_slots() {
        // One node, one slot, two tasks: task 0 runs [t0, t0+dur), task 1
        // queues behind it; a failed attempt (Block) precedes task 1's
        // work, exercising the retry hand-off.
        let shape = ClusterShape {
            nodes: 1,
            map_slots: 1,
            reduce_slots: 1,
            fetchers: 2,
        };
        let mut sched = Scheduler::new(shape, Vec::new());
        sched.begin_reduce_phase(1000);
        let outs = sched.run_reduce_phase(vec![
            (
                0,
                vec![ReduceAttempt::Work {
                    flows: vec![remote(10, 100, 0)],
                    post_ns: 40,
                }],
            ),
            (
                0,
                vec![
                    ReduceAttempt::Block { dur: 30 },
                    ReduceAttempt::Work {
                        flows: vec![local(20, 0)],
                        post_ns: 5,
                    },
                ],
            ),
        ]);
        // Task 0: starts at 1000, shuffle = 10 + 100 + 100 = 210, plus
        // post 40 → ends 1250.
        assert_eq!(outs[0][0].start, 1000);
        assert_eq!(outs[0][0].end, 1250);
        // Task 1 attempt 0 (Block) starts when the slot frees.
        assert_eq!(outs[1][0].start, 1250);
        assert_eq!(outs[1][0].end, 1280);
        // Attempt 1: local flow 20 + post 5.
        assert_eq!(outs[1][1].start, 1280);
        assert_eq!(outs[1][1].end, 1305);
        let (graph, edges) = sched.into_parts();
        assert!(edges
            .iter()
            .any(|e| e.kind == EdgeKind::Retry && e.src.task == 1 && e.dst.attempt == 1));
        assert!(edges
            .iter()
            .any(|e| e.kind == EdgeKind::Slot && e.src.task == 0 && e.dst.task == 1));
        assert!(graph
            .nodes
            .iter()
            .any(|n| matches!(n.kind, EventKind::FlowFinish { task: 0, flow: 0 })));
    }

    #[test]
    fn straggler_factor_scales_the_whole_attempt() {
        let shape = ClusterShape {
            nodes: 1,
            map_slots: 1,
            reduce_slots: 1,
            fetchers: 1,
        };
        let mut sched = Scheduler::new(shape, vec![3]);
        sched.begin_reduce_phase(0);
        let outs = sched.run_reduce_phase(vec![(
            0,
            vec![ReduceAttempt::Work {
                flows: vec![local(100, 0)],
                post_ns: 50,
            }],
        )]);
        // Shuffle 100 + post 50, scaled ×3.
        assert_eq!(outs[0][0].end, 450);
        assert_eq!(outs[0][0].shuffle.as_ref().unwrap().virtual_ns, 100);
    }
}
