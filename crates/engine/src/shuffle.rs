//! The shuffle subsystem: a pooled parallel fetcher per reduce task and a
//! contention-aware per-node NIC model for shuffle virtual time.
//!
//! A reduce task fetches its partition from every map output. Two things
//! happen per fetch: *real* work (disk read of the stored partition, plus
//! decompression when the map side whole-partition-compressed it), which
//! is measured, and *virtual* network time for remote sources.
//! Historically both lived in a sequential `for` loop inside the reduce
//! task; this module lifts them into a first-class subsystem with two
//! independent knobs:
//!
//! * **Fetcher pool**
//!   ([`ClusterConfig::shuffle_fetchers`](crate::cluster::ClusterConfig::shuffle_fetchers)):
//!   the real disk
//!   reads + decompression run on a bounded pool of scoped threads, like
//!   Hadoop's small pool of parallel copiers. Results are collected in
//!   **map-task-id order** (the same recipe the job driver uses for task
//!   results), so the merged reduce input is byte-identical at any fetcher
//!   count.
//! * **NIC-sharing virtual-time model**: with one fetcher, each remote flow
//!   has the destination NIC to itself and shuffle virtual time is the
//!   plain sum of `latency + bytes/bandwidth` terms — exactly the legacy
//!   accounting, reproduced bit-for-bit. With `f > 1` fetchers, up to `f`
//!   flows are in flight at once and concurrent flows into the reducer's
//!   node share its ingress bandwidth fairly; the unified event loop in
//!   [`crate::event`] computes the resulting schedule
//!   ([`crate::event::simulate_attempt_flows`]). Parallel fetch virtual
//!   time is therefore the *makespan* of overlapping flows — never more
//!   than the sequential sum, never less than the largest single flow.
//!
//! The event loop also measures the **straggler tail**: the span during
//! which every other fetcher has drained and the reducer is stalled on its
//! single slowest source. That feeds
//! [`Op::ShuffleWait`](crate::metrics::Op::ShuffleWait) and the
//! `shuffle_scale` harness.
//!
//! Under [`StreamingConfig::framed`](crate::io::StreamingConfig) a map
//! output partition is a *framed run* ([`crate::io::frame`]): the fetcher
//! ships the stored frames verbatim — frame-level decompression is
//! deferred to the reduce-side merge, which decodes one frame window at a
//! time (or all at once with `materialize_reads`). Either way the bytes
//! on the wire are the stored bytes, so [`ShuffleStats`] counts the same
//! `fetched_bytes` at any residency setting.
//!
//! The schedule computed *here* is the attempt-in-isolation one: this
//! reduce attempt's own flows sharing the destination NIC. Cross-task
//! contention — two reduce tasks scheduled onto the same node — is modeled
//! one level up, where the job driver replays the whole reduce phase
//! through [`crate::event::Scheduler::run_reduce_phase`] with node ingress
//! as a shared resource; [`ShuffleOutcome::inputs`] carries the per-flow
//! measured costs that replay needs. (Before the unified event loop this
//! was a documented modeling gap: co-located reducers did not contend.)

use crate::event::{simulate_attempt_flows, Flow};
use crate::fault::{shuffle_backoff_ns, FaultPlan};
use crate::io::compress::decompress;
use crate::metrics::{Stopwatch, VNanos};
use crate::net::NetworkConfig;
use crate::pool::run_indexed;
use crate::task::map_task::MapOutput;
use crate::trace::FlowTrace;
use std::io;

/// Hard cap on parallel fetchers per reduce task. Keeps the NIC event
/// loop's exact integer arithmetic in range ([`crate::event::SCALE32`] is
/// the LCM of all admissible flow counts); Hadoop's `parallel copies`
/// default is 5, so 16 is already generous.
pub const MAX_FETCHERS: usize = 16;

/// Number of power-of-two size buckets in a [`FetchHistogram`]
/// (bucket 39 holds fetches of 2^38 bytes = 256 GiB and above).
pub const NUM_FETCH_BUCKETS: usize = 40;

/// Power-of-two histogram of per-fetch stored sizes (bytes as shuffled,
/// i.e. compressed when map outputs are compressed).
///
/// Bucket `0` counts empty fetches; bucket `i > 0` counts fetches with
/// `bytes` in `[2^(i-1), 2^i)`. Timing-free and deterministic: identical
/// across worker and fetcher counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchHistogram {
    counts: [u64; NUM_FETCH_BUCKETS],
}

impl Default for FetchHistogram {
    fn default() -> Self {
        FetchHistogram {
            counts: [0; NUM_FETCH_BUCKETS],
        }
    }
}

impl FetchHistogram {
    /// Bucket index for a fetch of `bytes` stored bytes.
    pub fn bucket_of(bytes: u64) -> usize {
        ((u64::BITS - bytes.leading_zeros()) as usize).min(NUM_FETCH_BUCKETS - 1)
    }

    /// Count one fetch of `bytes` stored bytes.
    pub fn record(&mut self, bytes: u64) {
        self.counts[Self::bucket_of(bytes)] += 1;
    }

    /// Add another histogram's counts into this one.
    pub fn merge(&mut self, other: &FetchHistogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// All bucket counts, index `i` covering `[2^(i-1), 2^i)` (index 0:
    /// empty fetches).
    pub fn buckets(&self) -> &[u64; NUM_FETCH_BUCKETS] {
        &self.counts
    }

    /// Total fetches recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

/// Per-reduce-task shuffle statistics: byte totals, the fetch-size
/// histogram, and the virtual-time outcome of the NIC model.
///
/// Byte totals and the histogram are timing-free (deterministic across
/// worker/fetcher counts); the `*_ns` fields are virtual times driven by
/// measured disk/decompress costs and carry the usual measurement noise.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ShuffleStats {
    /// Number of map outputs fetched (one per map task).
    pub fetches: u64,
    /// Fetches whose source node differed from the reducer's node.
    pub remote_fetches: u64,
    /// Total stored bytes fetched (all sources).
    pub fetched_bytes: u64,
    /// Stored bytes fetched from remote sources (paid network time).
    pub remote_bytes: u64,
    /// Parallel fetchers the schedule was computed for (after clamping).
    pub fetchers: usize,
    /// Virtual shuffle makespan under the NIC-sharing model. Equals
    /// [`ShuffleStats::sequential_ns`] when `fetchers == 1`.
    pub virtual_ns: VNanos,
    /// Degenerate one-fetcher virtual time (the legacy independent-flow
    /// sum), computed from the same measured inputs for comparison.
    pub sequential_ns: VNanos,
    /// Largest single fetch (disk + latency + full-bandwidth transfer +
    /// decompress): a lower bound on any schedule's makespan.
    pub max_flow_ns: VNanos,
    /// Straggler tail: time the reducer was stalled on its single slowest
    /// source while every other fetcher was idle. Zero when `fetchers == 1`
    /// (a lone fetcher is always busy, never stalled).
    pub wait_ns: VNanos,
    /// Transiently failed fetch attempts that were retried (injected via
    /// [`FaultPlan::shuffle_fail`]). Deterministic: a pure function of the
    /// fault plan.
    pub retries: u64,
    /// Total virtual backoff charged before retries (capped exponential,
    /// [`crate::fault::shuffle_backoff_ns`]); flows into the NIC schedule
    /// as pre-flow time and into
    /// [`Op::ShuffleRetry`](crate::metrics::Op::ShuffleRetry).
    /// Deterministic, like `retries`.
    pub backoff_ns: VNanos,
    /// Histogram of per-fetch stored sizes.
    pub size_hist: FetchHistogram,
}

impl ShuffleStats {
    /// Merge another task's stats into this aggregate (virtual times add;
    /// `fetchers` keeps the maximum seen).
    pub fn merge(&mut self, other: &ShuffleStats) {
        self.fetches += other.fetches;
        self.remote_fetches += other.remote_fetches;
        self.fetched_bytes += other.fetched_bytes;
        self.remote_bytes += other.remote_bytes;
        self.fetchers = self.fetchers.max(other.fetchers);
        self.virtual_ns = self.virtual_ns.saturating_add(other.virtual_ns);
        self.sequential_ns = self.sequential_ns.saturating_add(other.sequential_ns);
        self.max_flow_ns = self.max_flow_ns.max(other.max_flow_ns);
        self.wait_ns = self.wait_ns.saturating_add(other.wait_ns);
        self.retries += other.retries;
        self.backoff_ns = self.backoff_ns.saturating_add(other.backoff_ns);
        self.size_hist.merge(&other.size_hist);
    }
}

/// One fetch's measured costs and routing, as the unified event loop's
/// phase-level replay needs them: the [`Flow`] the NIC model schedules
/// plus the source node it came from. Index == map task id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowInput {
    /// The flow as the NIC model sees it (pre work, network, post work).
    pub flow: Flow,
    /// Node the partition was fetched from.
    pub src_node: usize,
}

/// Everything a reduce task needs from its shuffle: the fetched runs plus
/// accounting.
#[derive(Debug)]
pub struct ShuffleOutcome {
    /// Non-empty partition runs, in map-task-id order — byte-identical at
    /// any fetcher count. For plain outputs these are decompressed record
    /// bytes; for framed outputs they are the stored frames, decoded
    /// window-by-window later in the reduce-side merge.
    pub runs: Vec<Vec<u8>>,
    /// Measured real work (disk reads + decompression), for
    /// [`Op::ShuffleFetch`](crate::metrics::Op::ShuffleFetch).
    pub fetch_work_ns: u64,
    /// Per-task statistics including the virtual-time schedule.
    pub stats: ShuffleStats,
    /// Per-flow measured inputs in map-task-id order — what the job driver
    /// feeds back into [`crate::event::Scheduler::run_reduce_phase`] to
    /// model cross-task ingress contention. Always populated.
    pub inputs: Vec<FlowInput>,
    /// Per-flow schedule (phase boundaries per fetch, in map-task order),
    /// recorded only when `run_shuffle` was called with `trace = true`.
    pub flows: Option<Vec<FlowTrace>>,
}

/// One fetched partition with its measured costs.
struct FetchedRun {
    data: Vec<u8>,
    src_node: usize,
    stored_bytes: u64,
    io_ns: u64,
    decompress_ns: u64,
    retries: u64,
    backoff_ns: u64,
}

/// Read (and decompress) one map output's partition, measuring both costs.
///
/// When the fault plan marks a fetch attempt of `map_task` as transiently
/// failed, the (real, measured) read is discarded and retried after a
/// capped exponential backoff charged in *virtual* time; the fetch errors
/// out only when `max_fetch_attempts` attempts have all failed.
fn fetch_one(
    mo: &MapOutput,
    map_task: usize,
    partition: usize,
    faults: Option<&FaultPlan>,
    max_fetch_attempts: usize,
) -> io::Result<FetchedRun> {
    let mut io_ns = 0u64;
    let mut retries = 0u64;
    let mut backoff_ns = 0u64;
    loop {
        let attempt = retries as usize;
        let sw = Stopwatch::start();
        let raw = mo.file.read_partition(partition)?;
        io_ns = io_ns.saturating_add(sw.elapsed_ns());
        if faults.is_some_and(|f| f.shuffle_fault(map_task, attempt)) {
            retries += 1;
            if attempt + 1 >= max_fetch_attempts.max(1) {
                return Err(io::Error::other(format!(
                    "shuffle fetch of map output {map_task} (partition {partition}) \
                     failed {retries} attempts"
                )));
            }
            backoff_ns = backoff_ns.saturating_add(shuffle_backoff_ns(attempt));
            continue;
        }
        let stored_bytes = raw.len() as u64;
        let (data, decompress_ns) = if mo.compressed && !raw.is_empty() {
            let sw_d = Stopwatch::start();
            let data = decompress(&raw).ok_or_else(|| {
                io::Error::new(io::ErrorKind::InvalidData, "corrupt compressed map output")
            })?;
            (data, sw_d.elapsed_ns())
        } else {
            (raw, 0)
        };
        return Ok(FetchedRun {
            data,
            src_node: mo.node,
            stored_bytes,
            io_ns,
            decompress_ns,
            retries,
            backoff_ns,
        });
    }
}

// The per-attempt NIC step loop that used to live here (its own `Slot` /
// `SlotState` state machine and `SCALE = lcm(1..=16)` arithmetic) is now a
// special case of the unified event loop: one node, one reduce slot, this
// attempt's flows. See `crate::event` for the loop and the proof sketch
// that the schedules are bit-identical.

/// Fetch a reduce task's partition from every map output.
///
/// Real disk reads and decompression run on up to `fetchers` scoped
/// threads (1 = inline, the legacy path); the virtual-time schedule is
/// computed by the NIC-sharing model. Runs come back in map-task-id order
/// regardless of fetcher count.
///
/// `faults` injects transient fetch failures (keyed by map-task id and
/// fetch attempt); each failure costs a virtual backoff that is charged to
/// the flow's pre-work in the NIC schedule, and a fetch whose failures
/// reach `max_fetch_attempts` becomes a hard `io::Error`.
///
/// With `trace` enabled the per-flow schedule (phase boundaries per fetch)
/// is recorded into [`ShuffleOutcome::flows`]; the untraced path records
/// nothing.
#[allow(clippy::too_many_arguments)]
pub fn run_shuffle(
    map_outputs: &[MapOutput],
    partition: usize,
    dst_node: usize,
    net: &NetworkConfig,
    fetchers: usize,
    faults: Option<&FaultPlan>,
    max_fetch_attempts: usize,
    trace: bool,
) -> io::Result<ShuffleOutcome> {
    let fetchers = fetchers.clamp(1, MAX_FETCHERS);
    let fetched = run_indexed(fetchers.min(map_outputs.len()), map_outputs.len(), |i| {
        // Map outputs arrive in map-task-id order, so index == task id.
        fetch_one(&map_outputs[i], i, partition, faults, max_fetch_attempts)
    });

    let mut stats = ShuffleStats {
        fetchers,
        ..ShuffleStats::default()
    };
    let mut fetch_work_ns = 0u64;
    let mut inputs: Vec<FlowInput> = Vec::with_capacity(map_outputs.len());
    let mut runs = Vec::with_capacity(map_outputs.len());
    // Results arrive in map-task-id order; the first error seen is the one
    // a sequential fetch loop would have reported.
    for fr in fetched {
        let fr = fr?;
        let remote = fr.src_node != dst_node;
        stats.fetches += 1;
        stats.fetched_bytes += fr.stored_bytes;
        if remote {
            stats.remote_fetches += 1;
            stats.remote_bytes += fr.stored_bytes;
        }
        stats.size_hist.record(fr.stored_bytes);
        stats.retries += fr.retries;
        stats.backoff_ns = stats.backoff_ns.saturating_add(fr.backoff_ns);
        fetch_work_ns = fetch_work_ns.saturating_add(fr.io_ns + fr.decompress_ns);
        // Backoff is virtual pre-flow time: the fetcher holds its slot
        // while backing off, so retries delay this flow (and, under the
        // NIC model, anything queued behind it) but burn no real work.
        let flow = Flow {
            io_ns: fr.io_ns,
            backoff_ns: fr.backoff_ns,
            remote,
            latency_ns: net.latency_ns,
            rate_ns: net.full_rate_ns(fr.stored_bytes),
            post_ns: fr.decompress_ns,
        };
        stats.sequential_ns = stats.sequential_ns.saturating_add(flow.isolated_ns());
        stats.max_flow_ns = stats.max_flow_ns.max(flow.isolated_ns());
        inputs.push(FlowInput {
            flow,
            src_node: fr.src_node,
        });
        if !fr.data.is_empty() {
            runs.push(fr.data);
        }
    }

    let mut flows: Option<Vec<FlowTrace>> = None;
    if fetchers <= 1 {
        // Degenerate case: the legacy independent-flow sum, bit-for-bit.
        stats.virtual_ns = stats.sequential_ns;
        stats.wait_ns = 0;
        if trace {
            // Sequential schedule: flows run back to back on one slot, each
            // paying its full isolated cost (including a local flow's
            // decompress — the one-fetcher sum has no NIC event loop).
            let mut cursor = 0u64;
            let traced = inputs
                .iter()
                .enumerate()
                .map(|(i, inp)| {
                    let job = inp.flow;
                    let start = cursor;
                    let pre_end = start + job.pre_ns();
                    let (latency_end, transfer_end) = if job.remote {
                        let le = pre_end.saturating_add(job.latency_ns);
                        (le, le.saturating_add(job.rate_ns))
                    } else {
                        (pre_end, pre_end)
                    };
                    let finish = transfer_end.saturating_add(job.post_ns);
                    cursor = finish;
                    FlowTrace {
                        map_task: i,
                        src_node: inp.src_node,
                        remote: job.remote,
                        io_ns: job.io_ns,
                        backoff_ns: job.backoff_ns,
                        slot: 0,
                        start,
                        pre_end,
                        latency_end,
                        transfer_end,
                        finish,
                    }
                })
                .collect();
            flows = Some(traced);
        }
    } else {
        let jobs: Vec<Flow> = inputs.iter().map(|i| i.flow).collect();
        let sim = simulate_attempt_flows(&jobs, fetchers);
        stats.virtual_ns = sim.virtual_ns;
        stats.wait_ns = sim.wait_ns;
        debug_assert!(
            stats.virtual_ns <= stats.sequential_ns,
            "NIC sharing cannot exceed the sequential sum"
        );
        debug_assert!(
            stats.virtual_ns >= stats.max_flow_ns,
            "no schedule beats the largest single flow"
        );
        if trace {
            let mut sched = sim.flows;
            sched.sort_by_key(|s| s.flow);
            flows = Some(
                sched
                    .iter()
                    .map(|s| {
                        let inp = inputs[s.flow];
                        FlowTrace {
                            map_task: s.flow,
                            src_node: inp.src_node,
                            remote: inp.flow.remote,
                            io_ns: inp.flow.io_ns,
                            backoff_ns: inp.flow.backoff_ns,
                            slot: s.slot,
                            start: s.start,
                            pre_end: s.pre_end,
                            latency_end: s.latency_end,
                            transfer_end: s.transfer_end,
                            finish: s.finish,
                        }
                    })
                    .collect(),
            );
        }
    }

    Ok(ShuffleOutcome {
        runs,
        fetch_work_ns,
        stats,
        inputs,
        flows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn remote(pre: u64, bytes_ns: u64, post: u64) -> Flow {
        Flow {
            io_ns: pre,
            backoff_ns: 0,
            remote: true,
            latency_ns: 100,
            rate_ns: bytes_ns,
            post_ns: post,
        }
    }

    fn local(pre: u64, post: u64) -> Flow {
        Flow {
            io_ns: pre,
            backoff_ns: 0,
            remote: false,
            latency_ns: 100,
            rate_ns: 0,
            post_ns: post,
        }
    }

    fn seq_sum(jobs: &[Flow]) -> u64 {
        jobs.iter().map(Flow::isolated_ns).sum()
    }

    fn max_flow(jobs: &[Flow]) -> u64 {
        jobs.iter().map(Flow::isolated_ns).max().unwrap_or(0)
    }

    /// The legacy `nic_schedule` signature over the unified event loop.
    fn nic_schedule(jobs: &[Flow], fetchers: usize) -> (VNanos, VNanos) {
        let sim = simulate_attempt_flows(jobs, fetchers);
        (sim.virtual_ns, sim.wait_ns)
    }

    #[test]
    fn one_fetcher_matches_sequential_sum() {
        let jobs = vec![remote(10, 1000, 5), local(7, 9), remote(3, 500, 2)];
        let (makespan, wait) = nic_schedule(&jobs, 1);
        assert_eq!(makespan, seq_sum(&jobs));
        assert_eq!(wait, 0);
    }

    #[test]
    fn two_equal_flows_share_the_nic() {
        // Two identical remote flows, no fixed work: each transfer takes
        // twice as long at half rate, but they overlap — makespan is
        // latency + 2 × full_rate (both drain together), not 2 × (latency
        // + full_rate).
        let jobs = vec![remote(0, 1000, 0), remote(0, 1000, 0)];
        let (makespan, _) = nic_schedule(&jobs, 2);
        assert_eq!(makespan, 100 + 2000);
        assert!(makespan < seq_sum(&jobs));
        assert!(makespan >= max_flow(&jobs));
    }

    #[test]
    fn unequal_flows_finish_shortest_first() {
        // 300 and 900 full-rate ns sharing: the short flow drains after
        // 600 shared ns (progress 300); the long one then has 600 left at
        // full rate. Makespan = latency + 600 + 600.
        let jobs = vec![remote(0, 300, 0), remote(0, 900, 0)];
        let (makespan, wait) = nic_schedule(&jobs, 2);
        assert_eq!(makespan, 100 + 600 + 600);
        // Tail where only the 900-flow remains: 600 ns.
        assert_eq!(wait, 600);
    }

    #[test]
    fn local_fetches_do_not_consume_bandwidth() {
        // A local fetch overlaps a remote flow without slowing it.
        let jobs = vec![remote(0, 1000, 0), local(500, 0)];
        let (makespan, _) = nic_schedule(&jobs, 2);
        assert_eq!(makespan, 100 + 1000);
    }

    #[test]
    fn bounds_hold_for_many_mixed_jobs() {
        let jobs: Vec<Flow> = (0..23)
            .map(|i| {
                if i % 3 == 0 {
                    local(17 * i as u64, 5)
                } else {
                    remote(11 * i as u64, 137 * i as u64, i as u64)
                }
            })
            .collect();
        for f in [2, 3, 4, 8, 16] {
            let (makespan, wait) = nic_schedule(&jobs, f);
            assert!(makespan <= seq_sum(&jobs), "f={f}");
            assert!(makespan >= max_flow(&jobs), "f={f}");
            assert!(wait <= makespan, "f={f}");
        }
        // More fetchers never slow the schedule down on flow-free work...
        // with shared bandwidth the makespan is monotone non-increasing.
        let (m2, _) = nic_schedule(&jobs, 2);
        let (m16, _) = nic_schedule(&jobs, 16);
        assert!(m16 <= m2);
    }

    #[test]
    fn local_decompress_occupies_the_fetcher_slot() {
        // Compressed local fetches: decompress is a scheduled phase, so a
        // lone slot serializes pre + post per flow, while two slots overlap
        // the flows completely (local flows never contend for the NIC).
        let jobs = vec![local(100, 50), local(100, 50)];
        let (m1, _) = nic_schedule(&jobs, 1);
        assert_eq!(m1, 300);
        let (m2, _) = nic_schedule(&jobs, 2);
        assert_eq!(m2, 150);
    }

    #[test]
    fn local_flow_phase_marks_split_pre_and_post() {
        // A local flow's latency/transfer marks collapse onto the end of
        // its disk read; the decompress phase runs after them, giving the
        // trace the same phase granularity as a remote flow.
        let jobs = vec![local(100, 50), remote(100, 200, 50)];
        let sim = simulate_attempt_flows(&jobs, 2);
        let mut sched = sim.flows;
        sched.sort_by_key(|s| s.flow);
        let l = sched[0];
        assert_eq!(
            (l.start, l.pre_end, l.latency_end, l.transfer_end, l.finish),
            (0, 100, 100, 100, 150)
        );
        let r = sched[1];
        assert_eq!(
            (r.start, r.pre_end, r.latency_end, r.transfer_end, r.finish),
            (0, 100, 200, 400, 450)
        );
        assert_eq!(sim.virtual_ns, 450);
    }

    #[test]
    fn zero_cost_jobs_terminate() {
        let jobs = vec![local(0, 0), remote(0, 0, 0), local(0, 0)];
        for f in [1, 2, 4] {
            let (makespan, _) = nic_schedule(&jobs, f);
            // Only the remote latency costs anything, at any fetcher count.
            assert_eq!(makespan, 100, "f={f}");
        }
    }

    #[test]
    fn empty_job_list_is_fine() {
        let (makespan, wait) = nic_schedule(&[], 4);
        assert_eq!((makespan, wait), (0, 0));
    }

    #[test]
    fn outcome_inputs_align_with_map_tasks() {
        let outputs = vec![
            test_output("inputs_a.bin", 1, &["alpha", "beta"]),
            test_output("inputs_b.bin", 0, &["gamma"]),
        ];
        let net = NetworkConfig::local_cluster();
        let out = run_shuffle(&outputs, 0, 0, &net, 2, None, 4, false).unwrap();
        assert_eq!(out.inputs.len(), 2);
        assert_eq!(out.inputs[0].src_node, 1);
        assert!(out.inputs[0].flow.remote);
        assert_eq!(out.inputs[1].src_node, 0);
        assert!(!out.inputs[1].flow.remote);
        // Replaying the recorded inputs through the event loop in isolation
        // reproduces the attempt's own schedule.
        let jobs: Vec<Flow> = out.inputs.iter().map(|i| i.flow).collect();
        let sim = simulate_attempt_flows(&jobs, 2);
        assert_eq!(sim.virtual_ns, out.stats.virtual_ns);
        assert_eq!(sim.wait_ns, out.stats.wait_ns);
    }

    #[test]
    fn histogram_buckets() {
        assert_eq!(FetchHistogram::bucket_of(0), 0);
        assert_eq!(FetchHistogram::bucket_of(1), 1);
        assert_eq!(FetchHistogram::bucket_of(2), 2);
        assert_eq!(FetchHistogram::bucket_of(3), 2);
        assert_eq!(FetchHistogram::bucket_of(4), 3);
        assert_eq!(FetchHistogram::bucket_of(u64::MAX), NUM_FETCH_BUCKETS - 1);
        let mut h = FetchHistogram::default();
        h.record(0);
        h.record(3);
        h.record(3);
        assert_eq!(h.total(), 3);
        assert_eq!(h.buckets()[2], 2);
        let mut h2 = FetchHistogram::default();
        h2.record(3);
        h2.merge(&h);
        assert_eq!(h2.buckets()[2], 3);
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = ShuffleStats {
            fetches: 2,
            remote_bytes: 10,
            fetched_bytes: 20,
            virtual_ns: 5,
            sequential_ns: 7,
            max_flow_ns: 4,
            wait_ns: 1,
            retries: 2,
            backoff_ns: 30,
            fetchers: 2,
            ..Default::default()
        };
        let b = ShuffleStats {
            fetches: 1,
            remote_bytes: 5,
            fetched_bytes: 5,
            virtual_ns: 3,
            sequential_ns: 3,
            max_flow_ns: 6,
            wait_ns: 0,
            retries: 1,
            backoff_ns: 12,
            fetchers: 4,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.fetches, 3);
        assert_eq!(a.remote_bytes, 15);
        assert_eq!(a.fetched_bytes, 25);
        assert_eq!(a.virtual_ns, 8);
        assert_eq!(a.sequential_ns, 10);
        assert_eq!(a.max_flow_ns, 6);
        assert_eq!(a.retries, 3);
        assert_eq!(a.backoff_ns, 42);
        assert_eq!(a.fetchers, 4);
    }

    // ---- fetch-retry tests (injected transient faults) ---------------------

    use crate::io::spill_file::SpillFile;

    /// Build a single-partition map output on disk for fetch tests.
    fn test_output(name: &str, node: usize, words: &[&str]) -> MapOutput {
        let dir = std::env::temp_dir().join(format!("textmr-shuffle-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut w = SpillFile::create(dir.join(name)).unwrap();
        w.start_partition(0).unwrap();
        for word in words {
            w.write_record(word.as_bytes(), b"1").unwrap();
        }
        MapOutput {
            file: w.finish().unwrap(),
            node,
            compressed: false,
            framed: false,
        }
    }

    #[test]
    fn injected_fetch_faults_retry_with_virtual_backoff() {
        let outputs = vec![
            test_output("retry_a.bin", 1, &["alpha", "beta"]),
            test_output("retry_b.bin", 2, &["gamma"]),
        ];
        let net = NetworkConfig::local_cluster();
        let clean = run_shuffle(&outputs, 0, 0, &net, 1, None, 4, false).unwrap();
        // Map 0 fails twice, map 1 once — all within the 4-attempt budget.
        let plan = FaultPlan::new()
            .shuffle_fail(0, 0)
            .shuffle_fail(0, 1)
            .shuffle_fail(1, 0);
        let faulty = run_shuffle(&outputs, 0, 0, &net, 1, Some(&plan), 4, false).unwrap();
        // Byte-identical reduce input despite the retries.
        assert_eq!(faulty.runs, clean.runs);
        assert_eq!(faulty.stats.fetched_bytes, clean.stats.fetched_bytes);
        assert_eq!(faulty.stats.size_hist, clean.stats.size_hist);
        // Retries and their deterministic virtual backoff appear in stats.
        assert_eq!(clean.stats.retries, 0);
        assert_eq!(clean.stats.backoff_ns, 0);
        assert_eq!(faulty.stats.retries, 3);
        let expected_backoff =
            shuffle_backoff_ns(0) + shuffle_backoff_ns(1) + shuffle_backoff_ns(0);
        assert_eq!(faulty.stats.backoff_ns, expected_backoff);
        // Backoff is charged in virtual time: it is part of the flows'
        // pre-work, so even the one-fetcher sequential sum must cover it.
        assert!(faulty.stats.virtual_ns >= expected_backoff);
        assert_eq!(faulty.stats.virtual_ns, faulty.stats.sequential_ns);
    }

    #[test]
    fn exhausted_fetch_retries_error_out() {
        let outputs = vec![test_output("exhaust.bin", 1, &["k"])];
        let plan = FaultPlan::new()
            .shuffle_fail(0, 0)
            .shuffle_fail(0, 1)
            .shuffle_fail(0, 2);
        let err = run_shuffle(
            &outputs,
            0,
            0,
            &NetworkConfig::local_cluster(),
            1,
            Some(&plan),
            3,
            false,
        )
        .unwrap_err();
        assert!(
            err.to_string().contains("failed 3 attempts"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn one_fetcher_without_firing_faults_matches_legacy_path() {
        let outputs = vec![
            test_output("legacy_a.bin", 0, &["x", "y"]),
            test_output("legacy_b.bin", 3, &["z"]),
        ];
        let net = NetworkConfig::local_cluster();
        // A plan that targets a map task this shuffle never fetches: no
        // fault fires, so the legacy one-fetcher accounting is reproduced
        // bit-for-bit in every deterministic field.
        let plan = FaultPlan::new().shuffle_fail(99, 0);
        let base = run_shuffle(&outputs, 0, 0, &net, 1, None, 4, false).unwrap();
        let armed = run_shuffle(&outputs, 0, 0, &net, 1, Some(&plan), 4, false).unwrap();
        assert_eq!(armed.runs, base.runs);
        assert_eq!(armed.stats.fetches, base.stats.fetches);
        assert_eq!(armed.stats.remote_fetches, base.stats.remote_fetches);
        assert_eq!(armed.stats.fetched_bytes, base.stats.fetched_bytes);
        assert_eq!(armed.stats.remote_bytes, base.stats.remote_bytes);
        assert_eq!(armed.stats.size_hist, base.stats.size_hist);
        assert_eq!(armed.stats.retries, 0);
        assert_eq!(armed.stats.backoff_ns, 0);
        assert_eq!(armed.stats.wait_ns, 0);
        assert_eq!(armed.stats.virtual_ns, armed.stats.sequential_ns);
    }

    #[test]
    fn parallel_fetchers_with_faults_keep_bytes_and_bounds() {
        let outputs: Vec<MapOutput> = (0..6)
            .map(|i| test_output(&format!("par_{i}.bin"), i, &["w", "q", "r"]))
            .collect();
        let net = NetworkConfig::local_cluster();
        let clean = run_shuffle(&outputs, 0, 0, &net, 4, None, 4, false).unwrap();
        let plan = FaultPlan::new()
            .shuffle_fail(1, 0)
            .shuffle_fail(4, 0)
            .shuffle_fail(4, 1);
        let faulty = run_shuffle(&outputs, 0, 0, &net, 4, Some(&plan), 4, false).unwrap();
        assert_eq!(faulty.runs, clean.runs);
        assert_eq!(faulty.stats.retries, 3);
        assert!(faulty.stats.virtual_ns <= faulty.stats.sequential_ns);
        assert!(faulty.stats.virtual_ns >= faulty.stats.max_flow_ns);
    }
}
