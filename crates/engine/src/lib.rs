//! # textmr-engine — a mini-MapReduce framework with measured abstraction costs
//!
//! This crate rebuilds the Hadoop substrate the paper ("Reducing MapReduce
//! Abstraction Costs for Text-Centric Applications", ICPP 2014) instruments
//! and modifies:
//!
//! * a byte-level [`job::Job`] interface (serialize-at-emit, raw-byte key
//!   comparison — Hadoop's design, so serialization and sort costs are real);
//! * a simulated DFS with block placement and Hadoop's exact input-split
//!   line protocol ([`io::dfs`], [`io::input`]);
//! * the map-side pipeline: spill buffer, sort, combine, on-disk spills,
//!   k-way merge ([`task`]); the producer/consumer overlap between the map
//!   thread and the support thread is advanced in *virtual time*
//!   ([`task::pipeline`]) while all work executes for real and is measured —
//!   see DESIGN.md for why (single-core determinism, faithful to the
//!   paper's Section IV-C model);
//! * a shuffle subsystem ([`shuffle`]) with a pooled parallel fetcher per
//!   reduce task and a contention-aware per-node NIC model over the
//!   bandwidth/latency network config ([`net`]), feeding sort-merge reduce
//!   ([`task::reduce_task`]);
//! * cluster-level virtual scheduling onto node slots ([`cluster`]);
//! * fine-grained abstraction-cost metrics ([`metrics`]) matching the
//!   paper's Table I operation breakdown;
//! * an opt-in deterministic virtual-time tracer ([`trace`]) that exports
//!   per-thread span timelines as Chrome-trace/Perfetto JSON or ASCII —
//!   streamable to disk during the run ([`trace::stream`]);
//! * an out-of-core streaming mode: record-windowed split reads, framed
//!   compressed intermediate runs with a per-run frame index
//!   ([`io::frame`]), and a single per-task byte budget
//!   ([`cluster::ClusterConfig::map_budget_bytes`]) that bounds resident
//!   buffers while keeping outputs and signatures byte-identical to the
//!   materialized path.
//!
//! The paper's optimizations plug in through [`controller::SpillController`]
//! and [`controller::EmitFilter`] — see the `textmr-core` crate.
//!
//! ## Quick example
//!
//! ```
//! use std::sync::Arc;
//! use textmr_engine::prelude::*;
//!
//! struct CountA;
//! impl Job for CountA {
//!     fn name(&self) -> &str { "count-a" }
//!     fn map(&self, rec: &Record<'_>, emit: &mut dyn Emit) {
//!         let n = rec.value.iter().filter(|&&b| b == b'a').count() as u64;
//!         emit.emit(b"a", &encode_u64(n));
//!     }
//!     fn reduce(&self, key: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
//!         let mut sum = 0;
//!         while let Some(v) = values.next() { sum += decode_u64(v).unwrap(); }
//!         out.emit(key, &encode_u64(sum));
//!     }
//! }
//!
//! let cluster = ClusterConfig::single_node();
//! let mut dfs = SimDfs::new(cluster.nodes, 1024);
//! dfs.put("in", b"banana\ncabbage\n".to_vec());
//! let run = run_job(&cluster, &JobConfig::default().with_reducers(1),
//!                   Arc::new(CountA), &dfs, &[("in", 0)]).unwrap();
//! let (_k, v) = &run.outputs[0][0];
//! assert_eq!(decode_u64(v), Some(5));
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod cache;
pub mod cluster;
pub mod codec;
pub mod controller;
pub mod dag;
pub mod event;
pub mod fault;
pub mod hash;
pub mod io;
pub mod job;
pub mod metrics;
pub mod net;
pub mod pool;
pub mod reference;
pub mod shuffle;
pub mod task;
pub mod trace;

/// One-stop imports for writing and running jobs.
pub mod prelude {
    pub use crate::cluster::{run_job, ClusterConfig, JobConfig, JobRun};
    pub use crate::codec::{decode_f64, decode_u64, encode_f64, encode_u64};
    pub use crate::controller::{
        adaptive_budget_factory, fixed_spill_factory, AdaptiveBudget, EmitFilter, FilterCtx,
        FixedSpill, SpillController, SpillObservation, TaskCtx,
    };
    pub use crate::dag::{run_dag, DagExecutor, DagRun};
    pub use crate::fault::{ChaosShape, FaultPlan, SpeculationConfig};
    pub use crate::io::dfs::SimDfs;
    pub use crate::io::StreamingConfig;
    pub use crate::job::{Emit, Job, JobDag, Record, Stage, StageInput, ValueCursor, ValueSink};
    pub use crate::metrics::{DagProfile, DagSignature, JobProfile, Op, Phase, TaskProfile};
    pub use crate::net::NetworkConfig;
    pub use crate::shuffle::{FetchHistogram, ShuffleStats};
    pub use crate::task::reduce_task::Grouping;
    pub use crate::trace::{stream::TraceStreamWriter, validate_chrome_trace, JobTrace, TaskTrace};
}
