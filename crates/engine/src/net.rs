//! The shuffle network model.
//!
//! Shuffle traffic between distinct nodes pays `latency + bytes/bandwidth`
//! in virtual time; node-local fetches pay only the (real, measured) disk
//! read. Two presets mirror the paper's clusters: a LAN-like local cluster
//! and an EC2-like cloud cluster with lower per-node bandwidth — the knob
//! behind Table IV's observation that InvertedIndex's gains shrink on EC2
//! because shuffle grows.
//!
//! [`NetworkConfig::transfer_ns`] prices one flow in isolation — the exact
//! accounting a single sequential fetcher produces. When a reduce task runs
//! several fetchers in parallel, concurrent flows into its node share the
//! node's ingress NIC instead of each getting the full bandwidth; that
//! contention-aware schedule is computed by [`crate::shuffle`], which uses
//! [`NetworkConfig::full_rate_ns`] as the per-flow service demand.

/// Bandwidth/latency model for cross-node transfers.
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// Per-node NIC bandwidth in bytes per second. A single flow gets all
    /// of it; concurrent flows into the same node share it fairly.
    pub bandwidth_bytes_per_sec: u64,
    /// Per-transfer latency in nanoseconds.
    pub latency_ns: u64,
}

impl NetworkConfig {
    /// Gigabit-LAN-like local cluster (the paper's 7-node lab cluster).
    pub fn local_cluster() -> Self {
        NetworkConfig {
            bandwidth_bytes_per_sec: 110 * 1024 * 1024, // ~1 GbE
            latency_ns: 200_000,                        // 0.2 ms
        }
    }

    /// EC2-like cloud cluster: more nodes contending, lower effective
    /// per-flow bandwidth and higher latency.
    pub fn ec2_cluster() -> Self {
        NetworkConfig {
            bandwidth_bytes_per_sec: 30 * 1024 * 1024,
            latency_ns: 800_000,
        }
    }

    /// Virtual nanoseconds to move `bytes` from `src` to `dst` as the only
    /// flow on the destination NIC. Free if the nodes coincide (local disk
    /// read is measured separately, for real).
    pub fn transfer_ns(&self, src: usize, dst: usize, bytes: u64) -> u64 {
        if src == dst {
            return 0;
        }
        self.latency_ns.saturating_add(self.full_rate_ns(bytes))
    }

    /// Virtual nanoseconds to push `bytes` through the NIC at the full
    /// bandwidth, excluding latency: the flow's service demand. Computed in
    /// `u128` so multi-gigabyte transfers cannot saturate the intermediate
    /// product (`bytes * 1e9` overflows `u64` above ~18 GB).
    pub fn full_rate_ns(&self, bytes: u64) -> u64 {
        let ns = (bytes as u128) * 1_000_000_000 / self.bandwidth_bytes_per_sec.max(1) as u128;
        u64::try_from(ns).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_transfers_are_free() {
        let net = NetworkConfig::local_cluster();
        assert_eq!(net.transfer_ns(3, 3, 1 << 30), 0);
    }

    #[test]
    fn remote_transfer_scales_with_bytes() {
        let net = NetworkConfig {
            bandwidth_bytes_per_sec: 1_000_000,
            latency_ns: 1000,
        };
        let t1 = net.transfer_ns(0, 1, 1_000_000); // 1 s + latency
        assert_eq!(t1, 1_000_000_000 + 1000);
        let t2 = net.transfer_ns(0, 1, 2_000_000);
        assert!(t2 > t1);
    }

    #[test]
    fn ec2_is_slower_than_local() {
        let bytes = 50 * 1024 * 1024;
        assert!(
            NetworkConfig::ec2_cluster().transfer_ns(0, 1, bytes)
                > NetworkConfig::local_cluster().transfer_ns(0, 1, bytes)
        );
    }

    #[test]
    fn zero_bandwidth_does_not_divide_by_zero() {
        let net = NetworkConfig {
            bandwidth_bytes_per_sec: 0,
            latency_ns: 5,
        };
        let _ = net.transfer_ns(0, 1, 100);
    }

    #[test]
    fn huge_transfers_do_not_saturate() {
        // 64 GiB at 1 GbE: the old u64 `bytes * 1e9` accounting saturated
        // above ~18 GB and silently undercounted. 64 GiB should cost 4× as
        // much as 16 GiB, not clamp.
        let net = NetworkConfig::local_cluster();
        let t16 = net.transfer_ns(0, 1, 16 << 30);
        let t64 = net.transfer_ns(0, 1, 64 << 30);
        assert!(t64 > 3 * t16, "t64={t64} t16={t16}");
        // And the exact value matches the u128 arithmetic.
        let expect = (64u128 << 30) * 1_000_000_000 / (110 * 1024 * 1024);
        assert_eq!(net.full_rate_ns(64 << 30), expect as u64);
    }
}
