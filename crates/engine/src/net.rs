//! The shuffle network model.
//!
//! Shuffle traffic between distinct nodes pays `latency + bytes/bandwidth`
//! in virtual time; node-local fetches pay only the (real, measured) disk
//! read. Two presets mirror the paper's clusters: a LAN-like local cluster
//! and an EC2-like cloud cluster with lower per-node bandwidth — the knob
//! behind Table IV's observation that InvertedIndex's gains shrink on EC2
//! because shuffle grows.

/// Bandwidth/latency model for cross-node transfers.
#[derive(Debug, Clone, Copy)]
pub struct NetworkConfig {
    /// Point-to-point bandwidth in bytes per second.
    pub bandwidth_bytes_per_sec: u64,
    /// Per-transfer latency in nanoseconds.
    pub latency_ns: u64,
}

impl NetworkConfig {
    /// Gigabit-LAN-like local cluster (the paper's 7-node lab cluster).
    pub fn local_cluster() -> Self {
        NetworkConfig {
            bandwidth_bytes_per_sec: 110 * 1024 * 1024, // ~1 GbE
            latency_ns: 200_000,                        // 0.2 ms
        }
    }

    /// EC2-like cloud cluster: more nodes contending, lower effective
    /// per-flow bandwidth and higher latency.
    pub fn ec2_cluster() -> Self {
        NetworkConfig {
            bandwidth_bytes_per_sec: 30 * 1024 * 1024,
            latency_ns: 800_000,
        }
    }

    /// Virtual nanoseconds to move `bytes` from `src` to `dst`. Free if the
    /// nodes coincide (local disk read is measured separately, for real).
    pub fn transfer_ns(&self, src: usize, dst: usize, bytes: u64) -> u64 {
        if src == dst {
            return 0;
        }
        self.latency_ns + bytes.saturating_mul(1_000_000_000) / self.bandwidth_bytes_per_sec.max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_transfers_are_free() {
        let net = NetworkConfig::local_cluster();
        assert_eq!(net.transfer_ns(3, 3, 1 << 30), 0);
    }

    #[test]
    fn remote_transfer_scales_with_bytes() {
        let net = NetworkConfig {
            bandwidth_bytes_per_sec: 1_000_000,
            latency_ns: 1000,
        };
        let t1 = net.transfer_ns(0, 1, 1_000_000); // 1 s + latency
        assert_eq!(t1, 1_000_000_000 + 1000);
        let t2 = net.transfer_ns(0, 1, 2_000_000);
        assert!(t2 > t1);
    }

    #[test]
    fn ec2_is_slower_than_local() {
        let bytes = 50 * 1024 * 1024;
        assert!(
            NetworkConfig::ec2_cluster().transfer_ns(0, 1, bytes)
                > NetworkConfig::local_cluster().transfer_ns(0, 1, bytes)
        );
    }

    #[test]
    fn zero_bandwidth_does_not_divide_by_zero() {
        let net = NetworkConfig {
            bandwidth_bytes_per_sec: 0,
            latency_ns: 5,
        };
        let _ = net.transfer_ns(0, 1, 100);
    }
}
