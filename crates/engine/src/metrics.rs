//! Fine-grained abstraction-cost accounting (the paper's Table I operations).
//!
//! Section II of the paper breaks the three MapReduce phases into
//! fine-grained operations and asks "where does the time go?". This module
//! defines those operations ([`Op`]), per-task accumulators
//! ([`TaskProfile`]), and the job-level aggregate ([`JobProfile`]) from
//! which every profiling figure/table in the paper (Fig. 2, Fig. 8, Fig. 9,
//! Table II) is derived.
//!
//! All durations are in nanoseconds of *measured work* or *virtual time*
//! (see `task::pipeline`); `u64` nanoseconds are used throughout so profiles
//! are plain data.

use crate::shuffle::ShuffleStats;
use std::fmt;
use std::time::Duration;

/// Virtual-time instant / duration in nanoseconds.
pub type VNanos = u64;

/// Number of fine-grained operations tracked.
pub const NUM_OPS: usize = 15;

/// Fine-grained operations, following the paper's Table I decomposition of
/// the map, shuffle and reduce phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Op {
    /// Reading and deserializing input records (map phase, framework).
    Read = 0,
    /// Executing the user's `map()` function (user code).
    Map = 1,
    /// Serializing and collecting map output into the spill buffer,
    /// including frequency-buffering's profiling/hashing overhead when
    /// enabled (framework).
    Emit = 2,
    /// Sorting a spill by (partition, key) (framework).
    Sort = 3,
    /// Executing the user's `combine()` function (user code).
    Combine = 4,
    /// Writing sorted/combined spills to local disk (framework).
    SpillWrite = 5,
    /// End-of-task merge of spill files into the map output (framework).
    Merge = 6,
    /// Map thread blocked on a full spill buffer (idle).
    MapIdle = 7,
    /// Support thread waiting for a spill to be produced (idle).
    SupportIdle = 8,
    /// Transferring map output partitions to reducers (shuffle phase).
    ShuffleFetch = 9,
    /// Reduce-side merge-sort of fetched runs (framework).
    ReduceMerge = 10,
    /// Executing the user's `reduce()` function (user code).
    Reduce = 11,
    /// Writing final output (framework).
    OutputWrite = 12,
    /// Reduce task stalled on its single slowest shuffle source while the
    /// rest of its fetcher pool sat idle — the straggler tail of a parallel
    /// shuffle (idle; zero with one fetcher, which is never "stalled").
    ShuffleWait = 13,
    /// Virtual backoff a fetcher spent between a transiently failed
    /// shuffle fetch and its retry (see
    /// [`fault::shuffle_backoff_ns`](crate::fault::shuffle_backoff_ns)).
    /// Idle, like [`Op::ShuffleWait`]: the fetcher does no work while
    /// backing off, so retries never inflate the Fig. 2 work breakdown.
    ShuffleRetry = 14,
}

/// Coarse phases of a MapReduce job.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Everything a map task does (read → merge).
    Map,
    /// Moving intermediate data to reducers.
    Shuffle,
    /// Reduce-side merge, user reduce, output write.
    Reduce,
}

impl Op {
    /// All operations in index order.
    pub const ALL: [Op; NUM_OPS] = [
        Op::Read,
        Op::Map,
        Op::Emit,
        Op::Sort,
        Op::Combine,
        Op::SpillWrite,
        Op::Merge,
        Op::MapIdle,
        Op::SupportIdle,
        Op::ShuffleFetch,
        Op::ReduceMerge,
        Op::Reduce,
        Op::OutputWrite,
        Op::ShuffleWait,
        Op::ShuffleRetry,
    ];

    /// Index in `0..NUM_OPS`.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// The phase this operation belongs to.
    pub fn phase(self) -> Phase {
        match self {
            Op::Read
            | Op::Map
            | Op::Emit
            | Op::Sort
            | Op::Combine
            | Op::SpillWrite
            | Op::Merge
            | Op::MapIdle
            | Op::SupportIdle => Phase::Map,
            Op::ShuffleFetch | Op::ShuffleWait | Op::ShuffleRetry => Phase::Shuffle,
            Op::ReduceMerge | Op::Reduce | Op::OutputWrite => Phase::Reduce,
        }
    }

    /// True for the operations that execute *user* code; everything else is
    /// the abstraction cost the paper attacks. (The paper counts `map()`,
    /// `combine()` and the reduce phase's `reduce()` as user code.)
    pub fn is_user_code(self) -> bool {
        matches!(self, Op::Map | Op::Combine | Op::Reduce)
    }

    /// True for the idle/wait pseudo-operations.
    pub fn is_idle(self) -> bool {
        matches!(
            self,
            Op::MapIdle | Op::SupportIdle | Op::ShuffleWait | Op::ShuffleRetry
        )
    }

    /// Display name used by the bench harnesses.
    pub fn name(self) -> &'static str {
        match self {
            Op::Read => "read",
            Op::Map => "map",
            Op::Emit => "emit",
            Op::Sort => "sort",
            Op::Combine => "combine",
            Op::SpillWrite => "spill",
            Op::Merge => "merge",
            Op::MapIdle => "map-idle",
            Op::SupportIdle => "support-idle",
            Op::ShuffleFetch => "shuffle",
            Op::ReduceMerge => "reduce-merge",
            Op::Reduce => "reduce",
            Op::OutputWrite => "write",
            Op::ShuffleWait => "shuffle-wait",
            Op::ShuffleRetry => "shuffle-retry",
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Accumulated nanoseconds per operation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpTimes {
    nanos: [u64; NUM_OPS],
}

impl OpTimes {
    /// Fresh zeroed accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `d` to operation `op`.
    #[inline]
    pub fn add(&mut self, op: Op, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.nanos[op.index()] = self.nanos[op.index()].saturating_add(ns);
    }

    /// Add raw nanoseconds to operation `op`.
    #[inline]
    pub fn add_nanos(&mut self, op: Op, ns: u64) {
        self.nanos[op.index()] += ns;
    }

    /// Overwrite operation `op` with `ns` (the job driver uses this to
    /// patch virtual ops — e.g. `ShuffleWait` — after replaying a reduce
    /// attempt's schedule under shared node ingress).
    #[inline]
    pub fn set_nanos(&mut self, op: Op, ns: u64) {
        self.nanos[op.index()] = ns;
    }

    /// Accumulated nanoseconds for `op`.
    #[inline]
    pub fn get(&self, op: Op) -> u64 {
        self.nanos[op.index()]
    }

    /// Merge another accumulator into this one.
    pub fn merge(&mut self, other: &OpTimes) {
        for i in 0..NUM_OPS {
            self.nanos[i] += other.nanos[i];
        }
    }

    /// Total across all *work* operations (idle excluded): the "serialized
    /// view of the work performed" from Figure 2.
    pub fn total_work(&self) -> u64 {
        Op::ALL
            .iter()
            .filter(|o| !o.is_idle())
            .map(|o| self.get(*o))
            .sum()
    }

    /// Total nanoseconds in user code (`map` + `combine` + `reduce`).
    pub fn user_code(&self) -> u64 {
        Op::ALL
            .iter()
            .filter(|o| o.is_user_code())
            .map(|o| self.get(*o))
            .sum()
    }

    /// Total framework-overhead nanoseconds (work that is neither user code
    /// nor idle) — the paper's "abstraction cost".
    pub fn abstraction_cost(&self) -> u64 {
        self.total_work() - self.user_code()
    }

    /// Work nanoseconds per phase (idle excluded).
    pub fn phase_total(&self, phase: Phase) -> u64 {
        Op::ALL
            .iter()
            .filter(|o| o.phase() == phase && !o.is_idle())
            .map(|o| self.get(*o))
            .sum()
    }

    /// Fractions of total work per op, for normalized breakdown charts.
    /// Returns zeros if no work was recorded.
    pub fn fractions(&self) -> [(Op, f64); NUM_OPS] {
        let total = self.total_work().max(1) as f64;
        let mut out = [(Op::Read, 0.0); NUM_OPS];
        for (slot, op) in out.iter_mut().zip(Op::ALL) {
            let v = if op.is_idle() {
                0.0
            } else {
                self.get(op) as f64 / total
            };
            *slot = (op, v);
        }
        out
    }
}

/// Timing-free summary of one task's profile: the counters and byte totals
/// that depend only on the input data and the job configuration, never on
/// measured wall-clock time. For a timing-independent configuration (fixed
/// spill fraction, no adaptive controller) these are identical across runs
/// and across sequential vs pooled execution — the determinism tests
/// compare them to prove the worker pool changes nothing observable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSignature {
    /// Input records consumed.
    pub input_records: u64,
    /// Records emitted by user `map()` code.
    pub emitted_records: u64,
    /// Records absorbed by the frequency buffer.
    pub freq_absorbed_records: u64,
    /// Bytes in the final merged output.
    pub output_bytes: u64,
    /// Per-spill `(bytes, records, records_after_combine)`, in order.
    pub spills: Vec<(usize, usize, usize)>,
}

/// Timing-free summary of a whole job run (see [`TaskSignature`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobSignature {
    /// Map-task signatures, in task-id order.
    pub map_tasks: Vec<TaskSignature>,
    /// Reduce-task signatures, in partition order.
    pub reduce_tasks: Vec<TaskSignature>,
    /// Total intermediate bytes shuffled across the virtual network.
    pub shuffled_bytes: u64,
}

/// Statistics of one spill produced by a map task.
#[derive(Debug, Clone)]
pub struct SpillStat {
    /// Serialized bytes in the spill segment (including per-record
    /// metadata accounted against the buffer budget).
    pub bytes: usize,
    /// Records in the segment before combining.
    pub records: usize,
    /// Records written to disk after combining.
    pub records_after_combine: usize,
    /// Measured time to produce the segment (map-thread work), ns.
    pub produce_ns: u64,
    /// Measured time to consume it (sort + combine + write), ns.
    pub consume_ns: u64,
    /// Spill fraction `x` in force when this segment started.
    pub fraction: f64,
}

/// Per-task profile: operation times plus the virtual-pipeline outcome.
#[derive(Debug, Clone, Default)]
pub struct TaskProfile {
    /// Operation-level accounting.
    pub ops: OpTimes,
    /// Virtual duration of the whole task (map: pipelined producer/consumer
    /// + merge; reduce: fetch + merge + reduce + write).
    pub virtual_duration: VNanos,
    /// Map-thread (producer) busy virtual time. Zero for reduce tasks.
    pub produce_busy: VNanos,
    /// Support-thread (consumer) busy virtual time. Zero for reduce tasks.
    pub consume_busy: VNanos,
    /// Map-thread blocked-on-full-buffer virtual time.
    pub producer_wait: VNanos,
    /// Support-thread waiting-for-spill virtual time.
    pub consumer_wait: VNanos,
    /// Per-spill statistics, in order.
    pub spills: Vec<SpillStat>,
    /// Input records consumed.
    pub input_records: u64,
    /// Map-output records emitted by user code (before combining).
    pub emitted_records: u64,
    /// Records absorbed by the frequency buffer (never entered the spill
    /// path individually).
    pub freq_absorbed_records: u64,
    /// Bytes written to the final (merged) map output / reduce output.
    pub output_bytes: u64,
    /// Peak tracked buffer bytes the task held at once: spill-buffer
    /// occupancy plus (out-of-core mode) the input chunk window, the open
    /// frame encoder, and decoded merge windows. This is the quantity the
    /// `map_budget_bytes` knob bounds. Deliberately **not** part of
    /// [`TaskSignature`]: window residency differs between streamed and
    /// materialized reads of the same bytes.
    pub peak_buffer_bytes: u64,
    /// Per-thread span timeline of this attempt, recorded only when the
    /// job ran with [`JobConfig::trace`](crate::cluster::JobConfig::trace)
    /// enabled (`None` otherwise — the untraced path allocates nothing).
    /// Boxed to keep the common untraced profile small.
    pub trace: Option<Box<crate::trace::TaskTrace>>,
}

impl TaskProfile {
    /// The timing-free part of this profile (see [`TaskSignature`]).
    pub fn signature(&self) -> TaskSignature {
        TaskSignature {
            input_records: self.input_records,
            emitted_records: self.emitted_records,
            freq_absorbed_records: self.freq_absorbed_records,
            output_bytes: self.output_bytes,
            spills: self
                .spills
                .iter()
                .map(|s| (s.bytes, s.records, s.records_after_combine))
                .collect(),
        }
    }

    /// Idle fraction of the map thread over the pipelined portion of the
    /// task (Table II's "Map, Idle").
    pub fn map_idle_fraction(&self) -> f64 {
        let span = self.pipeline_span();
        if span == 0 {
            return 0.0;
        }
        self.producer_wait as f64 / span as f64
    }

    /// Idle fraction of the support thread (Table II's "Support, Idle").
    pub fn support_idle_fraction(&self) -> f64 {
        let span = self.pipeline_span();
        if span == 0 {
            return 0.0;
        }
        (span.saturating_sub(self.consume_busy)) as f64 / span as f64
    }

    /// Virtual span of the producer/consumer pipeline (excludes the final
    /// merge, which is not pipelined).
    pub fn pipeline_span(&self) -> VNanos {
        self.produce_busy + self.producer_wait + self.consumer_trailing_wait()
    }

    fn consumer_trailing_wait(&self) -> VNanos {
        // The pipeline ends when the consumer finishes the final spill; any
        // consumer work after the producer finished extends the span.
        let producer_span = self.produce_busy + self.producer_wait;
        let consumer_span = self.consume_busy + self.consumer_wait;
        consumer_span.saturating_sub(producer_span)
    }
}

/// Speculative-execution counters for one job run. Deliberately *not* part
/// of [`JobSignature`]: a winning backup changes task placement (and hence
/// shuffle locality), so speculation is an opt-in scheduling policy rather
/// than a determinism-preserving knob.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SpeculationStats {
    /// Backup map attempts launched.
    pub map_backups: u64,
    /// Backup map attempts that finished before their primary.
    pub map_wins: u64,
    /// Backup reduce attempts launched.
    pub reduce_backups: u64,
    /// Backup reduce attempts that finished before their primary.
    pub reduce_wins: u64,
}

impl SpeculationStats {
    /// Total backups launched in either phase.
    pub fn backups(&self) -> u64 {
        self.map_backups + self.reduce_backups
    }

    /// Total backups that beat their primary.
    pub fn wins(&self) -> u64 {
        self.map_wins + self.reduce_wins
    }
}

/// Virtual schedule entry for one task (used for makespan accounting and
/// the bench harness's per-phase spans).
#[derive(Debug, Clone)]
pub struct TaskSpan {
    /// Node the task ran on.
    pub node: usize,
    /// Virtual start time.
    pub start: VNanos,
    /// Virtual end time.
    pub end: VNanos,
}

/// Aggregated profile of a complete job run.
#[derive(Debug, Clone, Default)]
pub struct JobProfile {
    /// Per-map-task profiles.
    pub map_tasks: Vec<TaskProfile>,
    /// Per-reduce-task profiles.
    pub reduce_tasks: Vec<TaskProfile>,
    /// Virtual schedule of map tasks.
    pub map_spans: Vec<TaskSpan>,
    /// Virtual schedule of reduce tasks (fetch+merge+reduce+write).
    pub reduce_spans: Vec<TaskSpan>,
    /// Virtual time when the map phase completed.
    pub map_phase_end: VNanos,
    /// Virtual job makespan.
    pub wall: VNanos,
    /// Total intermediate bytes shuffled across the (virtual) network.
    pub shuffled_bytes: u64,
    /// Per-reduce-task shuffle statistics (fetch histograms + NIC-model
    /// schedule), in partition order. See [`crate::shuffle`].
    pub reduce_shuffles: Vec<ShuffleStats>,
    /// Speculative-execution counters (zero unless
    /// [`JobConfig::speculation`](crate::cluster::JobConfig::speculation)
    /// was enabled).
    pub speculation: SpeculationStats,
}

impl JobProfile {
    /// The timing-free part of this profile (see [`JobSignature`]).
    pub fn signature(&self) -> JobSignature {
        JobSignature {
            map_tasks: self.map_tasks.iter().map(TaskProfile::signature).collect(),
            reduce_tasks: self
                .reduce_tasks
                .iter()
                .map(TaskProfile::signature)
                .collect(),
            shuffled_bytes: self.shuffled_bytes,
        }
    }

    /// Aggregate shuffle statistics across all reduce tasks (byte totals
    /// and virtual times add; `max_flow_ns` keeps the job-wide maximum).
    pub fn shuffle_stats(&self) -> ShuffleStats {
        let mut agg = ShuffleStats::default();
        for s in &self.reduce_shuffles {
            agg.merge(s);
        }
        agg
    }

    /// Sum of all operation times across all tasks.
    pub fn total_ops(&self) -> OpTimes {
        let mut agg = OpTimes::new();
        for t in self.map_tasks.iter().chain(self.reduce_tasks.iter()) {
            agg.merge(&t.ops);
        }
        agg
    }

    /// Mean map-thread idle fraction across map tasks (Table II row).
    pub fn map_idle_pct(&self) -> f64 {
        mean(self.map_tasks.iter().map(|t| t.map_idle_fraction())) * 100.0
    }

    /// Mean support-thread idle fraction across map tasks (Table II row).
    pub fn support_idle_pct(&self) -> f64 {
        mean(self.map_tasks.iter().map(|t| t.support_idle_fraction())) * 100.0
    }

    /// Total records removed from the intermediate data by combining
    /// (spill-time + merge-time + frequency-buffer).
    pub fn records_emitted(&self) -> u64 {
        self.map_tasks.iter().map(|t| t.emitted_records).sum()
    }

    /// Virtual makespan as a `Duration`.
    pub fn wall_duration(&self) -> Duration {
        Duration::from_nanos(self.wall)
    }
}

/// Timing-free summary of a whole multi-round DAG run: one
/// [`JobSignature`] per round, in execution order. Two DAG runs with equal
/// signatures produced byte-identical intermediate and final data at every
/// round boundary, whatever the cluster shape or fault timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DagSignature {
    /// Per-round signatures, in round order.
    pub rounds: Vec<JobSignature>,
}

/// Aggregated profile of a multi-round DAG job: the per-round profiles
/// plus the cumulative virtual makespan (rounds run back to back on one
/// scheduler, so the DAG wall is the last round's wall).
#[derive(Debug, Clone, Default)]
pub struct DagProfile {
    /// Per-round profiles, in execution order.
    pub rounds: Vec<JobProfile>,
    /// Virtual makespan of the whole DAG.
    pub wall: VNanos,
}

impl DagProfile {
    /// The timing-free part of this profile (see [`DagSignature`]).
    pub fn signature(&self) -> DagSignature {
        DagSignature {
            rounds: self.rounds.iter().map(JobProfile::signature).collect(),
        }
    }

    /// Sum of all operation times across every round's tasks — the
    /// cumulative abstraction-cost account of the whole pipeline.
    pub fn total_ops(&self) -> OpTimes {
        let mut agg = OpTimes::new();
        for r in &self.rounds {
            agg.merge(&r.total_ops());
        }
        agg
    }

    /// Total intermediate bytes shuffled across all rounds.
    pub fn shuffled_bytes(&self) -> u64 {
        self.rounds.iter().map(|r| r.shuffled_bytes).sum()
    }

    /// Number of rounds executed.
    pub fn num_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Virtual makespan as a `Duration`.
    pub fn wall_duration(&self) -> Duration {
        Duration::from_nanos(self.wall)
    }
}

fn mean(iter: impl Iterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in iter {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Convenience stopwatch measuring real elapsed time into an [`OpTimes`].
///
/// This is *the* measured-op site: abstraction-cost figures report how long
/// the host actually spent inside each operation, so host time is the
/// datum here, not a leak into the virtual schedule.
// textmr-lint: allow(wall-clock-in-virtual-path, reason = "measured-op stopwatch; real elapsed time is the quantity being reported, it never feeds the virtual schedule")
pub struct Stopwatch(std::time::Instant);

impl Stopwatch {
    /// Start timing.
    #[inline]
    pub fn start() -> Self {
        // textmr-lint: allow(wall-clock-in-virtual-path, reason = "measured-op stopwatch start; see Stopwatch docs")
        Stopwatch(std::time::Instant::now())
    }

    /// Elapsed nanoseconds since start.
    #[inline]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.0.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Stop and record into `times` under `op`; returns elapsed ns.
    #[inline]
    pub fn stop(self, times: &mut OpTimes, op: Op) -> u64 {
        let ns = self.elapsed_ns();
        times.add_nanos(op, ns);
        ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_indices_match_all_order() {
        for (i, op) in Op::ALL.iter().enumerate() {
            assert_eq!(op.index(), i);
        }
    }

    #[test]
    fn user_vs_abstraction_partition_work() {
        let mut t = OpTimes::new();
        t.add_nanos(Op::Map, 70);
        t.add_nanos(Op::Sort, 20);
        t.add_nanos(Op::Combine, 10);
        t.add_nanos(Op::MapIdle, 999); // idle not counted as work
        assert_eq!(t.total_work(), 100);
        assert_eq!(t.user_code(), 80);
        assert_eq!(t.abstraction_cost(), 20);
    }

    #[test]
    fn phase_assignment() {
        assert_eq!(Op::Sort.phase(), Phase::Map);
        assert_eq!(Op::ShuffleFetch.phase(), Phase::Shuffle);
        assert_eq!(Op::Reduce.phase(), Phase::Reduce);
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut t = OpTimes::new();
        t.add_nanos(Op::Read, 10);
        t.add_nanos(Op::Map, 30);
        t.add_nanos(Op::Emit, 60);
        let sum: f64 = t.fractions().iter().map(|(_, f)| f).sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn idle_fractions() {
        let t = TaskProfile {
            produce_busy: 60,
            producer_wait: 40,
            consume_busy: 50,
            consumer_wait: 30,
            ..Default::default()
        };
        // pipeline span = 60 + 40 = 100; consumer span = 80 < producer span,
        // so no trailing extension.
        assert_eq!(t.pipeline_span(), 100);
        assert!((t.map_idle_fraction() - 0.4).abs() < 1e-12);
        assert!((t.support_idle_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn trailing_consumer_extends_span() {
        let t = TaskProfile {
            produce_busy: 50,
            producer_wait: 0,
            consume_busy: 70,
            consumer_wait: 10,
            ..Default::default()
        };
        // Consumer span 80 > producer span 50 → span 80.
        assert_eq!(t.pipeline_span(), 80);
    }

    #[test]
    fn profiles_are_plain_send_sync_data() {
        // Task results cross worker-thread boundaries in the parallel
        // driver; these types must stay plain data.
        fn check<T: Send + Sync>() {}
        check::<OpTimes>();
        check::<SpillStat>();
        check::<TaskProfile>();
        check::<TaskSpan>();
        check::<JobProfile>();
        check::<TaskSignature>();
        check::<JobSignature>();
    }

    #[test]
    fn signatures_strip_timing() {
        let mut t = TaskProfile {
            input_records: 3,
            emitted_records: 9,
            ..Default::default()
        };
        t.ops.add_nanos(Op::Map, 1234); // timing must not appear in the signature
        t.spills.push(SpillStat {
            bytes: 100,
            records: 9,
            records_after_combine: 4,
            produce_ns: 55,
            consume_ns: 66,
            fraction: 0.8,
        });
        let sig = t.signature();
        assert_eq!(sig.input_records, 3);
        assert_eq!(sig.spills, vec![(100, 9, 4)]);
        let mut later = t.clone();
        later.ops.add_nanos(Op::Sort, 999);
        later.spills[0].produce_ns = 1;
        assert_eq!(sig, later.signature());
    }

    #[test]
    fn job_profile_aggregation() {
        let mut a = TaskProfile::default();
        a.ops.add_nanos(Op::Map, 5);
        let mut b = TaskProfile::default();
        b.ops.add_nanos(Op::Reduce, 7);
        let p = JobProfile {
            map_tasks: vec![a],
            reduce_tasks: vec![b],
            ..Default::default()
        };
        let agg = p.total_ops();
        assert_eq!(agg.get(Op::Map), 5);
        assert_eq!(agg.get(Op::Reduce), 7);
    }
}
