//! Reference executor: a direct, single-threaded MapReduce evaluation with
//! no buffering, spilling, combining or scheduling.
//!
//! Used by integration and property tests as the ground truth the engine's
//! pipelined execution must match for any configuration (spill fractions,
//! buffer sizes, filters, controllers, cluster shapes). Jobs must be
//! order-insensitive in their reduce values — the standard MapReduce
//! contract — because the engine's value ordering reflects spill structure.

use crate::io::dfs::SimDfs;
use crate::io::input::{InputSplit, SplitReader};
use crate::job::{Job, SliceValues, VecEmit};
use std::io;

/// `(key, value)` pairs per partition, as produced by [`reference_run`].
pub type PartitionedPairs = Vec<Vec<(Vec<u8>, Vec<u8>)>>;

/// Run `job` sequentially over the named inputs. Returns `(key, value)`
/// pairs per partition, key-sorted — directly comparable with
/// `JobRun::outputs` modulo value order inside multi-value reduces.
pub fn reference_run(
    job: &dyn Job,
    dfs: &SimDfs,
    inputs: &[(&str, u8)],
    num_partitions: usize,
) -> io::Result<PartitionedPairs> {
    // Map everything.
    let mut intermediate: Vec<(usize, Vec<u8>, Vec<u8>)> = Vec::new();
    for (name, source) in inputs {
        let file = dfs.get(name).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no DFS file {name}"))
        })?;
        for split in InputSplit::from_file(file, *source) {
            let mut reader = SplitReader::new(&split);
            while let Some(rec) = reader.next() {
                let mut sink = VecEmit::default();
                job.map(&rec, &mut sink);
                for (k, v) in sink.pairs {
                    let p = job.partition(&k, num_partitions);
                    intermediate.push((p, k, v));
                }
            }
        }
    }

    // Group by (partition, key) with the job's comparator; stable sort so
    // emission order is preserved within groups.
    intermediate.sort_by(|a, b| a.0.cmp(&b.0).then_with(|| job.compare_keys(&a.1, &b.1)));

    // Reduce.
    let mut out: Vec<Vec<(Vec<u8>, Vec<u8>)>> = vec![Vec::new(); num_partitions];
    let mut i = 0usize;
    while i < intermediate.len() {
        let (p, ref key, _) = intermediate[i];
        let mut j = i;
        while j < intermediate.len()
            && intermediate[j].0 == p
            && job.compare_keys(&intermediate[j].1, key) == std::cmp::Ordering::Equal
        {
            j += 1;
        }
        let values: Vec<&[u8]> = intermediate[i..j]
            .iter()
            .map(|(_, _, v)| v.as_slice())
            .collect();
        let mut cursor = SliceValues::new(&values);
        let mut sink = VecEmit::default();
        job.reduce(key, &mut cursor, &mut sink);
        out[p].extend(sink.pairs);
        i = j;
    }
    Ok(out)
}

/// Flatten + sort a per-partition output for comparison.
pub fn flatten_sorted(outputs: &[Vec<(Vec<u8>, Vec<u8>)>]) -> Vec<(Vec<u8>, Vec<u8>)> {
    let mut all: Vec<_> = outputs.iter().flatten().cloned().collect();
    all.sort();
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{run_job, ClusterConfig, JobConfig};
    use crate::codec::{decode_u64, encode_u64};
    use crate::job::{Emit, Record, ValueCursor, ValueSink};
    use std::sync::Arc;

    struct WordSum;
    impl Job for WordSum {
        fn name(&self) -> &str {
            "wordsum"
        }
        fn map(&self, r: &Record<'_>, e: &mut dyn Emit) {
            for w in r.value.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                e.emit(w, &encode_u64(1));
            }
        }
        fn has_combiner(&self) -> bool {
            true
        }
        fn combine(&self, _k: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
            let mut s = 0;
            while let Some(v) = values.next() {
                s += decode_u64(v).unwrap();
            }
            out.push(&encode_u64(s));
        }
        fn reduce(&self, k: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
            let mut s = 0;
            while let Some(v) = values.next() {
                s += decode_u64(v).unwrap();
            }
            out.emit(k, &encode_u64(s));
        }
    }

    #[test]
    fn engine_matches_reference() {
        let cluster = ClusterConfig::local();
        let mut dfs = SimDfs::new(cluster.nodes, 1024);
        let mut data = Vec::new();
        for i in 0..200 {
            data.extend_from_slice(format!("alpha w{} beta\n", i % 13).as_bytes());
        }
        dfs.put("c", data);
        let cfg = JobConfig::default();
        let engine = run_job(&cluster, &cfg, Arc::new(WordSum), &dfs, &[("c", 0)]).unwrap();
        let reference = reference_run(&WordSum, &dfs, &[("c", 0)], cfg.num_reducers).unwrap();
        assert_eq!(engine.sorted_pairs(), flatten_sorted(&reference));
    }
}
