//! Map-output compression (the paper's Section VII future work: "using
//! more efficient on-disk data representations to minimize I/O").
//!
//! A from-scratch byte-oriented LZ77 in the LZ4 spirit: greedy parsing
//! with a single-slot hash table over 4-byte prefixes, 64 KiB window,
//! varint-framed tokens. Intermediate MapReduce data (sorted runs of
//! framed records with heavily repeated keys) compresses extremely well
//! under even this simple scheme, trading CPU for shuffle bytes — the
//! trade Table IV's cloud network makes interesting.
//!
//! Token stream format, repeated until input is exhausted:
//!
//! ```text
//! varint literal_len, literal bytes,
//! varint match_dist,           // 0 ⇒ stream ends after these literals
//! varint match_len - MIN_MATCH // present iff match_dist > 0
//! ```

use crate::codec::{read_varint, write_varint};

/// Minimum match length worth encoding.
const MIN_MATCH: usize = 4;
/// Sliding-window limit for match distances.
const WINDOW: usize = 64 * 1024;
/// Hash-table size (power of two).
const HASH_BITS: u32 = 15;

#[inline]
fn hash4(bytes: &[u8]) -> usize {
    let v = u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]);
    (v.wrapping_mul(2654435761) >> (32 - HASH_BITS)) as usize
}

/// Compress `input` into a fresh buffer.
pub fn compress(input: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(input.len() / 2 + 16);
    let mut table = vec![usize::MAX; 1 << HASH_BITS];
    let mut pos = 0usize;
    let mut lit_start = 0usize;

    while pos + MIN_MATCH <= input.len() {
        let h = hash4(&input[pos..]);
        let cand = table[h];
        table[h] = pos;
        if cand != usize::MAX
            && pos - cand <= WINDOW
            && input[cand..cand + MIN_MATCH] == input[pos..pos + MIN_MATCH]
        {
            // Extend the match.
            let mut len = MIN_MATCH;
            while pos + len < input.len() && input[cand + len] == input[pos + len] {
                len += 1;
            }
            // Emit pending literals + the match token.
            write_varint(&mut out, (pos - lit_start) as u64);
            out.extend_from_slice(&input[lit_start..pos]);
            write_varint(&mut out, (pos - cand) as u64);
            write_varint(&mut out, (len - MIN_MATCH) as u64);
            // Index a few positions inside the match so later data can
            // refer back into it.
            let step = (len / 8).max(1);
            let mut p = pos + 1;
            while p + MIN_MATCH <= input.len() && p < pos + len {
                table[hash4(&input[p..])] = p;
                p += step;
            }
            pos += len;
            lit_start = pos;
        } else {
            pos += 1;
        }
    }
    // Trailing literals + end marker.
    write_varint(&mut out, (input.len() - lit_start) as u64);
    out.extend_from_slice(&input[lit_start..]);
    write_varint(&mut out, 0);
    out
}

/// Decompress a [`compress`]-produced buffer. Returns `None` on corrupt
/// input (never panics on malformed bytes).
pub fn decompress(input: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(input.len() * 3);
    let mut pos = 0usize;
    loop {
        let lit_len = read_varint(input, &mut pos)? as usize;
        let lit_end = pos.checked_add(lit_len)?;
        if lit_end > input.len() {
            return None;
        }
        out.extend_from_slice(&input[pos..lit_end]);
        pos = lit_end;
        let dist = read_varint(input, &mut pos)? as usize;
        if dist == 0 {
            // End marker: must coincide with end of input.
            return if pos == input.len() { Some(out) } else { None };
        }
        let len = read_varint(input, &mut pos)? as usize + MIN_MATCH;
        if dist > out.len() {
            return None;
        }
        // Overlapping copies are legal (runs), so copy byte-wise from the
        // back-reference.
        let start = out.len() - dist;
        for i in 0..len {
            let b = out[start + i];
            out.push(b);
        }
    }
}

/// Compression ratio achieved on `input` (compressed/original; lower is
/// better). Diagnostic helper for benches.
pub fn ratio(input: &[u8]) -> f64 {
    if input.is_empty() {
        return 1.0;
    }
    compress(input).len() as f64 / input.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8]) {
        let c = compress(data);
        let d = decompress(&c).expect("valid stream");
        assert_eq!(d, data);
    }

    #[test]
    fn empty_and_tiny() {
        roundtrip(b"");
        roundtrip(b"a");
        roundtrip(b"abc");
        roundtrip(b"abcd");
    }

    #[test]
    fn repetitive_data_compresses_well() {
        let data: Vec<u8> = b"the quick brown fox ".repeat(200);
        let c = compress(&data);
        assert!(
            c.len() * 4 < data.len(),
            "ratio {:.2}",
            c.len() as f64 / data.len() as f64
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn sorted_framed_records_compress() {
        // The real use case: a sorted run of framed (word, count) records.
        let mut data = Vec::new();
        for i in 0..2000 {
            crate::codec::write_record(
                &mut data,
                format!("word{:04}", i / 4).as_bytes(),
                &crate::codec::encode_u64(i),
            );
        }
        let c = compress(&data);
        assert!(
            c.len() * 2 < data.len(),
            "ratio {:.2}",
            c.len() as f64 / data.len() as f64
        );
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn incompressible_data_survives() {
        // Pseudo-random bytes: little to match, output may exceed input
        // slightly, but the roundtrip must hold.
        let mut x = 0x12345678u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        roundtrip(&data);
    }

    #[test]
    fn overlapping_run_copy() {
        // "aaaa..." forces dist=1 matches (overlapping copy).
        let data = vec![b'a'; 5000];
        let c = compress(&data);
        assert!(c.len() < 64);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn corrupt_streams_return_none() {
        let c = compress(b"hello hello hello hello hello");
        // Truncations.
        for cut in 1..c.len() {
            let _ = decompress(&c[..cut]); // must not panic
        }
        // Bogus distance.
        let mut bogus = Vec::new();
        write_varint(&mut bogus, 0); // no literals
        write_varint(&mut bogus, 99); // dist 99 > output so far
        write_varint(&mut bogus, 0);
        assert_eq!(decompress(&bogus), None);
        // Trailing garbage after end marker.
        let mut trailing = compress(b"xyz").to_vec();
        trailing.push(7);
        assert_eq!(decompress(&trailing), None);
    }

    #[test]
    fn long_matches_and_window_limit() {
        // A block repeated beyond the window still round-trips.
        let block: Vec<u8> = (0..=255u8).collect();
        let mut data = Vec::new();
        for _ in 0..600 {
            data.extend_from_slice(&block); // 153 KB > 64 KiB window
        }
        roundtrip(&data);
    }
}
