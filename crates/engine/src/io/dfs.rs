//! Simulated distributed filesystem.
//!
//! Files live in memory as immutable byte buffers divided into logical
//! blocks; each block has a *home node* (round-robin placement, offset by a
//! file-name hash so multiple inputs spread differently). Blocks drive two
//! things the paper's setting has and a single process does not:
//!
//! * **input splits** — one map task per block, as in Hadoop;
//! * **locality** — a map task runs on its block's home node; reading a
//!   remote block would cross the simulated network (the scheduler here
//!   always achieves locality, which Hadoop approximates closely for large
//!   jobs).

use crate::job::fnv1a;
// textmr-lint: allow(unordered-iteration, reason = "file table is keyed by name for lookups; never iterated")
use std::collections::HashMap;
use std::sync::Arc;

/// A file stored in the simulated DFS.
#[derive(Debug, Clone)]
pub struct DfsFile {
    /// File contents.
    pub data: Arc<Vec<u8>>,
    /// Home node of each logical block.
    pub placements: Vec<usize>,
    /// Logical block size used at placement time.
    pub block_size: usize,
}

impl DfsFile {
    /// Number of logical blocks.
    pub fn num_blocks(&self) -> usize {
        self.placements.len()
    }

    /// Byte range of block `b`.
    pub fn block_range(&self, b: usize) -> (usize, usize) {
        let start = b * self.block_size;
        let end = ((b + 1) * self.block_size).min(self.data.len());
        (start, end)
    }
}

/// The simulated DFS: a name → file map with block placement.
#[derive(Debug)]
pub struct SimDfs {
    nodes: usize,
    block_size: usize,
    // textmr-lint: allow(unordered-iteration, reason = "name-to-file lookups only; never iterated")
    files: HashMap<String, DfsFile>,
}

impl SimDfs {
    /// New DFS spanning `nodes` nodes with the given block size.
    ///
    /// # Panics
    /// Panics if `nodes == 0` or `block_size == 0`.
    pub fn new(nodes: usize, block_size: usize) -> Self {
        assert!(nodes > 0, "DFS needs at least one node");
        assert!(block_size > 0, "block size must be positive");
        SimDfs {
            nodes,
            block_size,
            // textmr-lint: allow(unordered-iteration, reason = "see the field annotation: lookup-only")
            files: HashMap::new(),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    /// Store `data` under `name`, computing block placement. Replaces any
    /// existing file of that name.
    pub fn put(&mut self, name: &str, data: Vec<u8>) {
        let blocks = data.len().div_ceil(self.block_size).max(1);
        let start_node = (fnv1a(name.as_bytes()) % self.nodes as u64) as usize;
        let placements = (0..blocks).map(|b| (start_node + b) % self.nodes).collect();
        self.files.insert(
            name.to_string(),
            DfsFile {
                data: Arc::new(data),
                placements,
                block_size: self.block_size,
            },
        );
    }

    /// Look up a file.
    pub fn get(&self, name: &str) -> Option<&DfsFile> {
        self.files.get(name)
    }

    /// File size in bytes, if present.
    pub fn len(&self, name: &str) -> Option<usize> {
        self.files.get(name).map(|f| f.data.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_round_robin_and_covers_nodes() {
        let mut dfs = SimDfs::new(4, 10);
        dfs.put("f", vec![0u8; 95]);
        let f = dfs.get("f").unwrap();
        assert_eq!(f.num_blocks(), 10);
        for w in f.placements.windows(2) {
            assert_eq!(w[1], (w[0] + 1) % 4);
        }
    }

    #[test]
    fn block_ranges_tile_the_file() {
        let mut dfs = SimDfs::new(2, 10);
        dfs.put("f", vec![1u8; 25]);
        let f = dfs.get("f").unwrap();
        assert_eq!(f.num_blocks(), 3);
        assert_eq!(f.block_range(0), (0, 10));
        assert_eq!(f.block_range(1), (10, 20));
        assert_eq!(f.block_range(2), (20, 25));
    }

    #[test]
    fn empty_file_has_one_block() {
        let mut dfs = SimDfs::new(2, 10);
        dfs.put("empty", Vec::new());
        assert_eq!(dfs.get("empty").unwrap().num_blocks(), 1);
    }

    #[test]
    fn different_names_place_differently() {
        let mut dfs = SimDfs::new(5, 10);
        dfs.put("aaa", vec![0u8; 10]);
        dfs.put("bbb", vec![0u8; 10]);
        // Not guaranteed for all hash pairs, but these differ under FNV.
        assert_ne!(
            dfs.get("aaa").unwrap().placements[0],
            dfs.get("bbb").unwrap().placements[0]
        );
    }
}
