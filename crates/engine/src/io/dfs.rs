//! Simulated distributed filesystem.
//!
//! Files are immutable byte ranges divided into logical blocks; a file's
//! bytes live either in memory ([`SimDfs::put`]) or on local disk
//! ([`SimDfs::put_path`] — the out-of-core path, where splits are read
//! through a bounded chunk window instead of being materialized). Each
//! block has a *home node* (round-robin placement, offset by a file-name
//! hash so multiple inputs spread differently). Blocks drive two things
//! the paper's setting has and a single process does not:
//!
//! * **input splits** — one map task per block, as in Hadoop;
//! * **locality** — a map task runs on its block's home node; reading a
//!   remote block would cross the simulated network (the scheduler here
//!   always achieves locality, which Hadoop approximates closely for large
//!   jobs).

use crate::job::fnv1a;
// textmr-lint: allow(unordered-iteration, reason = "file table is keyed by name for lookups; never iterated")
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Where a DFS file's (or an input split's) bytes live.
#[derive(Debug, Clone)]
pub enum FileBytes {
    /// Resident in memory; splits slice into the shared buffer zero-copy.
    Mem(Arc<Vec<u8>>),
    /// On local disk; readers pull bounded chunk windows with
    /// `std::fs::File` reads instead of materializing the file.
    Disk {
        /// Path of the backing file (shared by all splits of the file).
        path: Arc<PathBuf>,
        /// File length in bytes, captured at registration time.
        len: usize,
    },
}

impl FileBytes {
    /// Total length in bytes.
    pub fn len(&self) -> usize {
        match self {
            FileBytes::Mem(d) => d.len(),
            FileBytes::Disk { len, .. } => *len,
        }
    }

    /// True when the file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// A file stored in the simulated DFS.
#[derive(Debug, Clone)]
pub struct DfsFile {
    /// File contents (in memory or disk-backed).
    pub bytes: FileBytes,
    /// Home node of each logical block.
    pub placements: Vec<usize>,
    /// Logical block size used at placement time.
    pub block_size: usize,
}

impl DfsFile {
    /// Number of logical blocks.
    pub fn num_blocks(&self) -> usize {
        self.placements.len()
    }

    /// Byte range of block `b`.
    pub fn block_range(&self, b: usize) -> (usize, usize) {
        let start = b * self.block_size;
        let end = ((b + 1) * self.block_size).min(self.bytes.len());
        (start, end)
    }
}

/// The simulated DFS: a name → file map with block placement.
#[derive(Debug)]
pub struct SimDfs {
    nodes: usize,
    block_size: usize,
    // textmr-lint: allow(unordered-iteration, reason = "name-to-file lookups only; never iterated")
    files: HashMap<String, DfsFile>,
}

impl SimDfs {
    /// New DFS spanning `nodes` nodes with the given block size.
    ///
    /// # Panics
    /// Panics if `nodes == 0` or `block_size == 0`.
    pub fn new(nodes: usize, block_size: usize) -> Self {
        assert!(nodes > 0, "DFS needs at least one node");
        assert!(block_size > 0, "block size must be positive");
        SimDfs {
            nodes,
            block_size,
            // textmr-lint: allow(unordered-iteration, reason = "see the field annotation: lookup-only")
            files: HashMap::new(),
        }
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// Block size in bytes.
    pub fn block_size(&self) -> usize {
        self.block_size
    }

    fn placements_for(&self, name: &str, len: usize) -> Vec<usize> {
        let blocks = len.div_ceil(self.block_size).max(1);
        let start_node = (fnv1a(name.as_bytes()) % self.nodes as u64) as usize;
        (0..blocks).map(|b| (start_node + b) % self.nodes).collect()
    }

    /// Store `data` under `name`, computing block placement. Replaces any
    /// existing file of that name.
    pub fn put(&mut self, name: &str, data: Vec<u8>) {
        let placements = self.placements_for(name, data.len());
        self.files.insert(
            name.to_string(),
            DfsFile {
                bytes: FileBytes::Mem(Arc::new(data)),
                placements,
                block_size: self.block_size,
            },
        );
    }

    /// Register the on-disk file at `path` under `name` without reading
    /// it: block placement uses the same name hash + round-robin as
    /// [`SimDfs::put`], and split readers stream chunk windows from the
    /// file. This is the out-of-core input path — corpus size is bounded
    /// by disk, not RAM.
    pub fn put_path(&mut self, name: &str, path: &Path) -> io::Result<()> {
        let len = std::fs::metadata(path)?.len() as usize;
        let placements = self.placements_for(name, len);
        self.files.insert(
            name.to_string(),
            DfsFile {
                bytes: FileBytes::Disk {
                    path: Arc::new(path.to_path_buf()),
                    len,
                },
                placements,
                block_size: self.block_size,
            },
        );
        Ok(())
    }

    /// Look up a file.
    pub fn get(&self, name: &str) -> Option<&DfsFile> {
        self.files.get(name)
    }

    /// File size in bytes, if present.
    pub fn len(&self, name: &str) -> Option<usize> {
        self.files.get(name).map(|f| f.bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn placement_is_round_robin_and_covers_nodes() {
        let mut dfs = SimDfs::new(4, 10);
        dfs.put("f", vec![0u8; 95]);
        let f = dfs.get("f").unwrap();
        assert_eq!(f.num_blocks(), 10);
        for w in f.placements.windows(2) {
            assert_eq!(w[1], (w[0] + 1) % 4);
        }
    }

    #[test]
    fn block_ranges_tile_the_file() {
        let mut dfs = SimDfs::new(2, 10);
        dfs.put("f", vec![1u8; 25]);
        let f = dfs.get("f").unwrap();
        assert_eq!(f.num_blocks(), 3);
        assert_eq!(f.block_range(0), (0, 10));
        assert_eq!(f.block_range(1), (10, 20));
        assert_eq!(f.block_range(2), (20, 25));
    }

    #[test]
    fn empty_file_has_one_block() {
        let mut dfs = SimDfs::new(2, 10);
        dfs.put("empty", Vec::new());
        assert_eq!(dfs.get("empty").unwrap().num_blocks(), 1);
    }

    #[test]
    fn different_names_place_differently() {
        let mut dfs = SimDfs::new(5, 10);
        dfs.put("aaa", vec![0u8; 10]);
        dfs.put("bbb", vec![0u8; 10]);
        // Not guaranteed for all hash pairs, but these differ under FNV.
        assert_ne!(
            dfs.get("aaa").unwrap().placements[0],
            dfs.get("bbb").unwrap().placements[0]
        );
    }

    #[test]
    fn disk_file_places_like_its_mem_twin() {
        let dir = std::env::temp_dir().join(format!("textmr-dfs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("twin.txt");
        let data = vec![7u8; 95];
        std::fs::write(&path, &data).unwrap();

        let mut dfs = SimDfs::new(4, 10);
        dfs.put("twin", data);
        let mem_placements = dfs.get("twin").unwrap().placements.clone();
        dfs.put_path("twin", &path).unwrap();
        let f = dfs.get("twin").unwrap();
        assert_eq!(f.placements, mem_placements);
        assert_eq!(dfs.len("twin"), Some(95));
        assert!(matches!(f.bytes, FileBytes::Disk { .. }));
    }
}
