//! On-disk spill files and map-output files.
//!
//! A spill file stores varint-framed `(key, value)` records grouped by
//! partition, each partition's records sorted by key, with an in-memory
//! partition index `(offset, length, record count)`. The same container
//! backs both intermediate spills and the final merged map output (whose
//! partitions reducers fetch during shuffle). Files are deleted when the
//! handle drops, like Hadoop's task-attempt directories.
//!
//! Under [`StreamingConfig::framed`](crate::io::StreamingConfig) a
//! partition holds a *framed run* (see [`crate::io::frame`]) instead of
//! bare records: the stored bytes are compressed frames and a per-run
//! frame index rides in a side table, so consumers can open a
//! [`FrameRunCursor`] and decode one frame window at a time instead of
//! materializing the whole partition.

use crate::codec::write_record;
use crate::io::frame::{FrameMeta, FrameRunCursor};
use std::fs::{File, OpenOptions};
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Index entry for one partition inside a spill file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PartIndex {
    /// Partition id.
    pub part: usize,
    /// Byte offset of the partition's records.
    pub offset: u64,
    /// Byte length of the partition's records.
    pub len: u64,
    /// Number of records in the partition.
    pub records: u64,
}

/// A completed, immutable spill file.
#[derive(Debug)]
pub struct SpillFile {
    path: PathBuf,
    index: Vec<PartIndex>,
    /// Frame indexes for framed partitions, parallel to `index` lookups:
    /// `(part, frame index)`. Empty for legacy (record/blob) files.
    frames: Vec<(usize, Vec<FrameMeta>)>,
    total_bytes: u64,
    total_records: u64,
}

impl SpillFile {
    /// Open a writer creating `path` (truncates any existing file).
    pub fn create(path: PathBuf) -> io::Result<SpillFileWriter> {
        let file = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&path)?;
        Ok(SpillFileWriter {
            w: BufWriter::new(file),
            path,
            index: Vec::new(),
            frames: Vec::new(),
            offset: 0,
            cur: None,
            buf: Vec::with_capacity(64 * 1024),
        })
    }

    /// The partition index (ascending partition order, only non-empty
    /// partitions present).
    pub fn index(&self) -> &[PartIndex] {
        &self.index
    }

    /// Total serialized bytes across partitions.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Total records across partitions.
    pub fn total_records(&self) -> u64 {
        self.total_records
    }

    /// Index entry for `part`, if the partition is non-empty.
    pub fn part_index(&self, part: usize) -> Option<&PartIndex> {
        self.index.iter().find(|e| e.part == part)
    }

    /// Read one partition's framed records into memory. Returns an empty
    /// buffer for partitions with no records.
    pub fn read_partition(&self, part: usize) -> io::Result<Vec<u8>> {
        let Some(entry) = self.part_index(part) else {
            return Ok(Vec::new());
        };
        let mut f = File::open(&self.path)?;
        f.seek(SeekFrom::Start(entry.offset))?;
        let mut buf = vec![0u8; entry.len as usize];
        f.read_exact(&mut buf)?;
        Ok(buf)
    }

    /// Frame index for a framed partition, or `None` for empty or
    /// legacy (unframed) partitions.
    pub fn frames(&self, part: usize) -> Option<&[FrameMeta]> {
        self.frames
            .iter()
            .find(|(p, _)| *p == part)
            .map(|(_, m)| m.as_slice())
    }

    /// Open a windowed record cursor over a framed partition (reads one
    /// frame at a time from disk). Yields an exhausted cursor for empty
    /// partitions; errors for partitions written without frames.
    pub fn framed_cursor(&self, part: usize) -> io::Result<FrameRunCursor> {
        let Some(entry) = self.part_index(part) else {
            return FrameRunCursor::from_mem(Vec::new(), Vec::new());
        };
        let Some(metas) = self.frames(part) else {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("partition {part} was not written framed"),
            ));
        };
        FrameRunCursor::from_file(self.path.clone(), entry.offset, entry.len, metas.to_vec())
    }

    /// Filesystem path (for diagnostics).
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for SpillFile {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

/// Incremental writer for a [`SpillFile`]. Partitions must be started in
/// ascending order; records within a partition must already be sorted.
#[derive(Debug)]
pub struct SpillFileWriter {
    w: BufWriter<File>,
    path: PathBuf,
    index: Vec<PartIndex>,
    frames: Vec<(usize, Vec<FrameMeta>)>,
    offset: u64,
    cur: Option<PartIndex>,
    buf: Vec<u8>,
}

impl SpillFileWriter {
    /// Begin a new partition. Panics if `part` is not greater than the
    /// previous partition (enforces sorted layout).
    pub fn start_partition(&mut self, part: usize) -> io::Result<()> {
        self.finish_partition()?;
        if let Some(last) = self.index.last() {
            assert!(
                part > last.part,
                "partitions must be written in ascending order"
            );
        }
        self.cur = Some(PartIndex {
            part,
            offset: self.offset,
            len: 0,
            records: 0,
        });
        Ok(())
    }

    /// Append one record to the current partition.
    ///
    /// # Panics
    /// Panics if no partition has been started.
    pub fn write_record(&mut self, key: &[u8], value: &[u8]) -> io::Result<()> {
        let cur = self
            .cur
            .as_mut()
            .expect("write_record before start_partition");
        self.buf.clear();
        write_record(&mut self.buf, key, value);
        self.w.write_all(&self.buf)?;
        cur.len += self.buf.len() as u64;
        cur.records += 1;
        self.offset += self.buf.len() as u64;
        Ok(())
    }

    /// Write one partition as a single pre-encoded blob (e.g. a compressed
    /// run). `records` is the logical record count the blob carries.
    pub fn write_raw_partition(
        &mut self,
        part: usize,
        data: &[u8],
        records: u64,
    ) -> io::Result<()> {
        self.start_partition(part)?;
        let cur = self.cur.as_mut().expect("partition just started");
        self.w.write_all(data)?;
        cur.len += data.len() as u64;
        cur.records += records;
        self.offset += data.len() as u64;
        Ok(())
    }

    /// Write one partition as a framed run: `stored` is the frame bytes
    /// from a [`crate::io::frame::FrameEncoder`], `metas` its frame
    /// index, `records` the logical record count. Readers use
    /// [`SpillFile::framed_cursor`] (windowed) or
    /// [`SpillFile::read_partition`] (whole stored run, e.g. for the
    /// shuffle's network byte accounting).
    pub fn write_framed_partition(
        &mut self,
        part: usize,
        stored: &[u8],
        metas: Vec<FrameMeta>,
        records: u64,
    ) -> io::Result<()> {
        self.write_raw_partition(part, stored, records)?;
        if records > 0 {
            self.frames.push((part, metas));
        }
        Ok(())
    }

    fn finish_partition(&mut self) -> io::Result<()> {
        if let Some(cur) = self.cur.take() {
            if cur.records > 0 {
                self.index.push(cur);
            }
        }
        Ok(())
    }

    /// Flush and seal the file.
    pub fn finish(mut self) -> io::Result<SpillFile> {
        self.finish_partition()?;
        self.w.flush()?;
        let total_bytes = self.index.iter().map(|e| e.len).sum();
        let total_records = self.index.iter().map(|e| e.records).sum();
        Ok(SpillFile {
            path: self.path,
            index: self.index,
            frames: self.frames,
            total_bytes,
            total_records,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::read_record;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("textmr-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn write_and_read_partitions() {
        let mut w = SpillFile::create(tmp("spill1.bin")).unwrap();
        w.start_partition(0).unwrap();
        w.write_record(b"a", b"1").unwrap();
        w.write_record(b"b", b"2").unwrap();
        w.start_partition(2).unwrap();
        w.write_record(b"z", b"26").unwrap();
        let f = w.finish().unwrap();

        assert_eq!(f.total_records(), 3);
        let p0 = f.read_partition(0).unwrap();
        let mut pos = 0;
        assert_eq!(read_record(&p0, &mut pos), Some((&b"a"[..], &b"1"[..])));
        assert_eq!(read_record(&p0, &mut pos), Some((&b"b"[..], &b"2"[..])));
        assert_eq!(read_record(&p0, &mut pos), None);

        // Partition 1 was never written: empty.
        assert!(f.read_partition(1).unwrap().is_empty());

        let p2 = f.read_partition(2).unwrap();
        let mut pos = 0;
        assert_eq!(read_record(&p2, &mut pos), Some((&b"z"[..], &b"26"[..])));
    }

    #[test]
    fn empty_partitions_are_omitted_from_index() {
        let mut w = SpillFile::create(tmp("spill2.bin")).unwrap();
        w.start_partition(0).unwrap();
        w.start_partition(1).unwrap();
        w.write_record(b"k", b"v").unwrap();
        let f = w.finish().unwrap();
        assert_eq!(f.index().len(), 1);
        assert_eq!(f.index()[0].part, 1);
    }

    #[test]
    #[should_panic(expected = "ascending")]
    fn out_of_order_partitions_panic() {
        let mut w = SpillFile::create(tmp("spill3.bin")).unwrap();
        w.start_partition(1).unwrap();
        w.write_record(b"k", b"v").unwrap();
        w.start_partition(0).unwrap();
    }

    #[test]
    fn framed_partition_cursor_round_trips() {
        use crate::io::frame::FrameEncoder;
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..300)
            .map(|i| (format!("w{i:05}").into_bytes(), vec![b'x'; 30]))
            .collect();
        let mut enc = FrameEncoder::new(1 << 10);
        for (k, v) in &pairs {
            enc.push_record(k, v);
        }
        let (stored, metas, records) = enc.finish();
        assert!(metas.len() > 1);

        let mut w = SpillFile::create(tmp("spill5.bin")).unwrap();
        w.write_framed_partition(0, &stored, metas.clone(), records)
            .unwrap();
        let f = w.finish().unwrap();
        assert_eq!(f.frames(0).unwrap().len(), metas.len());
        assert!(f.frames(1).is_none());
        // Stored bytes (what the shuffle ships) match the encoder output.
        assert_eq!(f.read_partition(0).unwrap(), stored);

        let mut c = f.framed_cursor(0).unwrap();
        let mut got = Vec::new();
        while let Some((k, v)) = c.peek() {
            got.push((k.to_vec(), v.to_vec()));
            c.advance().unwrap();
        }
        assert_eq!(got, pairs);
        // A legacy partition written without frames refuses a cursor.
        let mut w = SpillFile::create(tmp("spill6.bin")).unwrap();
        w.start_partition(0).unwrap();
        w.write_record(b"k", b"v").unwrap();
        let f = w.finish().unwrap();
        assert!(f.framed_cursor(0).is_err());
    }

    #[test]
    fn file_removed_on_drop() {
        let path = tmp("spill4.bin");
        let mut w = SpillFile::create(path.clone()).unwrap();
        w.start_partition(0).unwrap();
        w.write_record(b"k", b"v").unwrap();
        let f = w.finish().unwrap();
        assert!(path.exists());
        drop(f);
        assert!(!path.exists());
    }
}
