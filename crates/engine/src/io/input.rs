//! Input splits and the line-oriented record reader.
//!
//! One split per DFS block, with Hadoop's exact line-boundary protocol: a
//! reader starting at offset > 0 skips the (partial) first line — it
//! belongs to the previous split — and the reader owning the byte at the
//! split end finishes the line that straddles it. Every input line is
//! therefore read exactly once across splits.

use crate::codec::encode_u64;
use crate::io::dfs::DfsFile;
use crate::job::Record;
use std::sync::Arc;

/// One unit of map-task input.
#[derive(Debug, Clone)]
pub struct InputSplit {
    /// The whole file's bytes (splits slice into it).
    pub data: Arc<Vec<u8>>,
    /// Split start offset (inclusive).
    pub start: usize,
    /// Split end offset (exclusive; the line containing `end-1` is
    /// finished by this split).
    pub end: usize,
    /// Node holding the block.
    pub home_node: usize,
    /// Logical input source tag (multi-input jobs).
    pub source: u8,
}

impl InputSplit {
    /// Create one split per block of `file`.
    pub fn from_file(file: &DfsFile, source: u8) -> Vec<InputSplit> {
        (0..file.num_blocks())
            .map(|b| {
                let (start, end) = file.block_range(b);
                InputSplit {
                    data: Arc::clone(&file.data),
                    start,
                    end,
                    home_node: file.placements[b],
                    source,
                }
            })
            .collect()
    }

    /// Split length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the byte range is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Exact number of records this split will yield (one scan; used to
    /// size the frequency buffer's profiling stage).
    pub fn count_records(&self) -> u64 {
        let mut reader = SplitReader::new(self);
        let mut n = 0u64;
        while reader.next().is_some() {
            n += 1;
        }
        n
    }
}

/// Lending reader producing line [`Record`]s from a split. The record key
/// is the big-endian byte offset of the line; the value is the line without
/// its trailing newline.
pub struct SplitReader<'a> {
    data: &'a [u8],
    pos: usize,
    end: usize,
    source: u8,
    key_buf: [u8; 8],
}

impl<'a> SplitReader<'a> {
    /// Position a reader at the split's first whole line.
    pub fn new(split: &'a InputSplit) -> Self {
        let data: &'a [u8] = &split.data;
        let mut pos = split.start;
        if pos > 0 {
            // Skip the partial first line: it belongs to the previous split.
            while pos < data.len() && data[pos - 1] != b'\n' {
                pos += 1;
            }
        }
        SplitReader {
            data,
            pos,
            end: split.end,
            source: split.source,
            key_buf: [0; 8],
        }
    }

    /// Next record, or `None` at the end of the split.
    #[allow(clippy::should_implement_trait)] // lending iterator: borrows self
    pub fn next(&mut self) -> Option<Record<'_>> {
        // A line is read by the split containing its first byte.
        if self.pos >= self.end || self.pos >= self.data.len() {
            return None;
        }
        let line_start = self.pos;
        let mut i = self.pos;
        while i < self.data.len() && self.data[i] != b'\n' {
            i += 1;
        }
        let line = &self.data[line_start..i];
        self.pos = if i < self.data.len() { i + 1 } else { i };
        self.key_buf = encode_u64(line_start as u64);
        Some(Record {
            key: &self.key_buf,
            value: line,
            source: self.source,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::dfs::SimDfs;

    fn splits_of(text: &str, block: usize, nodes: usize) -> Vec<InputSplit> {
        let mut dfs = SimDfs::new(nodes, block);
        dfs.put("f", text.as_bytes().to_vec());
        InputSplit::from_file(dfs.get("f").unwrap(), 0)
    }

    fn read_all(split: &InputSplit) -> Vec<String> {
        let mut r = SplitReader::new(split);
        let mut out = Vec::new();
        while let Some(rec) = r.next() {
            out.push(String::from_utf8(rec.value.to_vec()).unwrap());
        }
        out
    }

    #[test]
    fn every_line_read_exactly_once_across_splits() {
        // Lines of varied length, block size chosen to cut lines mid-way.
        let text = "alpha\nbee\ncderation\nx\nlongerline\nz\n";
        for block in 1..=text.len() {
            let splits = splits_of(text, block, 3);
            let mut got: Vec<String> = splits.iter().flat_map(read_all).collect();
            let want: Vec<String> = text.lines().map(str::to_string).collect();
            got.sort();
            let mut want_sorted = want.clone();
            want_sorted.sort();
            assert_eq!(got, want_sorted, "block size {block}");
        }
    }

    #[test]
    fn record_keys_are_line_offsets() {
        let splits = splits_of("ab\ncd\n", 100, 1);
        let split = &splits[0];
        let mut r = SplitReader::new(split);
        let rec = r.next().unwrap();
        assert_eq!(crate::codec::decode_u64(rec.key), Some(0));
        let rec = r.next().unwrap();
        assert_eq!(crate::codec::decode_u64(rec.key), Some(3));
    }

    #[test]
    fn missing_trailing_newline_still_yields_last_line() {
        let splits = splits_of("one\ntwo", 100, 1);
        assert_eq!(read_all(&splits[0]), vec!["one", "two"]);
    }

    #[test]
    fn count_records_matches_read() {
        let text = "a\nbb\nccc\ndddd\n";
        for block in [2, 3, 5, 100] {
            let splits = splits_of(text, block, 2);
            let total: u64 = splits.iter().map(|s| s.count_records()).sum();
            assert_eq!(total, 4, "block {block}");
        }
    }

    #[test]
    fn source_tag_propagates() {
        let mut dfs = SimDfs::new(1, 100);
        dfs.put("f", b"x\n".to_vec());
        let splits = InputSplit::from_file(dfs.get("f").unwrap(), 7);
        let mut r = SplitReader::new(&splits[0]);
        assert_eq!(r.next().unwrap().source, 7);
    }

    #[test]
    fn empty_lines_are_records() {
        let splits = splits_of("a\n\nb\n", 100, 1);
        assert_eq!(read_all(&splits[0]), vec!["a", "", "b"]);
    }
}
