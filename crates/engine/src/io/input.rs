//! Input splits and the record readers over them.
//!
//! Text splits: one split per DFS block, with Hadoop's exact line-boundary
//! protocol — a reader starting at offset > 0 skips the (partial) first
//! line (it belongs to the previous split) and the reader owning the byte
//! at the split end finishes the line that straddles it. Every input line
//! is therefore read exactly once across splits.
//!
//! Framed splits: a whole buffer of [`crate::codec`] varint-framed
//! `(key, value)` records — the typed cross-round hand-off of DAG jobs. A
//! prior round's reduce partition becomes the next round's map input
//! without re-materializing through a text codec; the reader yields the
//! framed pairs directly.

use crate::codec::{encode_u64, read_record, write_record};
use crate::io::dfs::DfsFile;
use crate::job::Record;
use std::sync::Arc;

/// One unit of map-task input.
#[derive(Debug, Clone)]
pub struct InputSplit {
    /// The whole file's bytes (splits slice into it).
    pub data: Arc<Vec<u8>>,
    /// Split start offset (inclusive).
    pub start: usize,
    /// Split end offset (exclusive; the line containing `end-1` is
    /// finished by this split).
    pub end: usize,
    /// Node holding the block.
    pub home_node: usize,
    /// Logical input source tag (multi-input jobs).
    pub source: u8,
    /// True for a typed hand-off split: the bytes are varint-framed
    /// `(key, value)` records instead of newline-delimited text.
    pub framed: bool,
}

impl InputSplit {
    /// Create one split per block of `file`.
    pub fn from_file(file: &DfsFile, source: u8) -> Vec<InputSplit> {
        (0..file.num_blocks())
            .map(|b| {
                let (start, end) = file.block_range(b);
                InputSplit {
                    data: Arc::clone(&file.data),
                    start,
                    end,
                    home_node: file.placements[b],
                    source,
                    framed: false,
                }
            })
            .collect()
    }

    /// Frame `(key, value)` pairs into one whole-buffer typed split — the
    /// cross-round hand-off of a DAG job.
    pub fn from_pairs<'p, I>(pairs: I, home_node: usize, source: u8) -> InputSplit
    where
        I: IntoIterator<Item = &'p (Vec<u8>, Vec<u8>)>,
    {
        let mut buf = Vec::new();
        for (k, v) in pairs {
            write_record(&mut buf, k, v);
        }
        let end = buf.len();
        InputSplit {
            data: Arc::new(buf),
            start: 0,
            end,
            home_node,
            source,
            framed: true,
        }
    }

    /// Split length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the byte range is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Exact number of records this split will yield (one scan; used to
    /// size the frequency buffer's profiling stage).
    pub fn count_records(&self) -> u64 {
        let mut reader = SplitReader::new(self);
        let mut n = 0u64;
        while reader.next().is_some() {
            n += 1;
        }
        n
    }
}

/// Lending reader producing [`Record`]s from a split. For text splits the
/// record key is the big-endian byte offset of the line and the value is
/// the line without its trailing newline; for framed splits key and value
/// are the framed pair's own bytes.
pub struct SplitReader<'a> {
    data: &'a [u8],
    pos: usize,
    end: usize,
    source: u8,
    framed: bool,
    key_buf: [u8; 8],
}

impl<'a> SplitReader<'a> {
    /// Position a reader at the split's first whole record.
    pub fn new(split: &'a InputSplit) -> Self {
        let data: &'a [u8] = &split.data;
        let mut pos = split.start;
        if !split.framed && pos > 0 {
            // Skip the partial first line: it belongs to the previous split.
            while pos < data.len() && data[pos - 1] != b'\n' {
                pos += 1;
            }
        }
        SplitReader {
            data,
            pos,
            end: split.end,
            source: split.source,
            framed: split.framed,
            key_buf: [0; 8],
        }
    }

    /// Next record, or `None` at the end of the split.
    #[allow(clippy::should_implement_trait)] // lending iterator: borrows self
    pub fn next(&mut self) -> Option<Record<'_>> {
        if self.pos >= self.end || self.pos >= self.data.len() {
            return None;
        }
        if self.framed {
            let (key, value) = read_record(self.data, &mut self.pos)?;
            return Some(Record {
                key,
                value,
                source: self.source,
            });
        }
        // A line is read by the split containing its first byte.
        let line_start = self.pos;
        let mut i = self.pos;
        while i < self.data.len() && self.data[i] != b'\n' {
            i += 1;
        }
        let line = &self.data[line_start..i];
        self.pos = if i < self.data.len() { i + 1 } else { i };
        self.key_buf = encode_u64(line_start as u64);
        Some(Record {
            key: &self.key_buf,
            value: line,
            source: self.source,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::dfs::SimDfs;

    fn splits_of(text: &str, block: usize, nodes: usize) -> Vec<InputSplit> {
        let mut dfs = SimDfs::new(nodes, block);
        dfs.put("f", text.as_bytes().to_vec());
        InputSplit::from_file(dfs.get("f").unwrap(), 0)
    }

    fn read_all(split: &InputSplit) -> Vec<String> {
        let mut r = SplitReader::new(split);
        let mut out = Vec::new();
        while let Some(rec) = r.next() {
            out.push(String::from_utf8(rec.value.to_vec()).unwrap());
        }
        out
    }

    #[test]
    fn every_line_read_exactly_once_across_splits() {
        // Lines of varied length, block size chosen to cut lines mid-way.
        let text = "alpha\nbee\ncderation\nx\nlongerline\nz\n";
        for block in 1..=text.len() {
            let splits = splits_of(text, block, 3);
            let mut got: Vec<String> = splits.iter().flat_map(read_all).collect();
            let want: Vec<String> = text.lines().map(str::to_string).collect();
            got.sort();
            let mut want_sorted = want.clone();
            want_sorted.sort();
            assert_eq!(got, want_sorted, "block size {block}");
        }
    }

    #[test]
    fn record_keys_are_line_offsets() {
        let splits = splits_of("ab\ncd\n", 100, 1);
        let split = &splits[0];
        let mut r = SplitReader::new(split);
        let rec = r.next().unwrap();
        assert_eq!(crate::codec::decode_u64(rec.key), Some(0));
        let rec = r.next().unwrap();
        assert_eq!(crate::codec::decode_u64(rec.key), Some(3));
    }

    #[test]
    fn missing_trailing_newline_still_yields_last_line() {
        let splits = splits_of("one\ntwo", 100, 1);
        assert_eq!(read_all(&splits[0]), vec!["one", "two"]);
    }

    #[test]
    fn count_records_matches_read() {
        let text = "a\nbb\nccc\ndddd\n";
        for block in [2, 3, 5, 100] {
            let splits = splits_of(text, block, 2);
            let total: u64 = splits.iter().map(|s| s.count_records()).sum();
            assert_eq!(total, 4, "block {block}");
        }
    }

    #[test]
    fn source_tag_propagates() {
        let mut dfs = SimDfs::new(1, 100);
        dfs.put("f", b"x\n".to_vec());
        let splits = InputSplit::from_file(dfs.get("f").unwrap(), 7);
        let mut r = SplitReader::new(&splits[0]);
        assert_eq!(r.next().unwrap().source, 7);
    }

    #[test]
    fn empty_lines_are_records() {
        let splits = splits_of("a\n\nb\n", 100, 1);
        assert_eq!(read_all(&splits[0]), vec!["a", "", "b"]);
    }

    #[test]
    fn framed_split_round_trips_pairs() {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (b"k1".to_vec(), b"value one".to_vec()),
            (b"".to_vec(), b"empty key".to_vec()),
            (b"k3\nwith newline".to_vec(), b"".to_vec()),
        ];
        let split = InputSplit::from_pairs(&pairs, 2, 5);
        assert!(split.framed);
        assert_eq!(split.home_node, 2);
        assert_eq!(split.count_records(), 3);
        let mut r = SplitReader::new(&split);
        for (k, v) in &pairs {
            let rec = r.next().unwrap();
            assert_eq!(rec.key, &k[..]);
            assert_eq!(rec.value, &v[..]);
            assert_eq!(rec.source, 5);
        }
        assert!(r.next().is_none());
    }

    #[test]
    fn framed_keys_pass_through_untouched() {
        // Newlines inside framed records must not split them: the framed
        // reader is the codec, not the line scanner.
        let pairs = vec![(b"a".to_vec(), b"line1\nline2".to_vec())];
        let split = InputSplit::from_pairs(&pairs, 0, 0);
        let mut r = SplitReader::new(&split);
        assert_eq!(r.next().unwrap().value, b"line1\nline2");
        assert!(r.next().is_none());
    }
}
