//! Input splits and the record readers over them.
//!
//! Text splits: one split per DFS block, with Hadoop's exact line-boundary
//! protocol — a reader starting at offset > 0 skips the (partial) first
//! line (it belongs to the previous split) and the reader owning the byte
//! at the split end finishes the line that straddles it. Every input line
//! is therefore read exactly once across splits.
//!
//! Framed splits: a whole buffer of [`crate::codec`] varint-framed
//! `(key, value)` records — the typed cross-round hand-off of DAG jobs. A
//! prior round's reduce partition becomes the next round's map input
//! without re-materializing through a text codec; the reader yields the
//! framed pairs directly.
//!
//! A split's bytes are either resident ([`SplitBytes::Mem`] — the reader
//! slices zero-copy) or disk-backed ([`SplitBytes::Disk`] — the reader
//! streams bounded chunk windows, so a split never materializes more than
//! one window plus the line straddling its edge). Both backings yield
//! byte-identical record streams: same values, same big-endian absolute
//! line-offset keys.

use crate::codec::{encode_u64, read_record, write_record};
use crate::io::dfs::{DfsFile, FileBytes};
use crate::job::Record;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom};
use std::path::PathBuf;
use std::sync::Arc;

/// Default chunk-window size for disk-backed split readers (256 KiB).
pub const DEFAULT_INPUT_CHUNK: usize = 256 << 10;

/// Where an [`InputSplit`]'s bytes live (mirrors
/// [`FileBytes`] at split granularity).
#[derive(Debug, Clone)]
pub enum SplitBytes {
    /// The whole file's bytes, shared; splits slice into it zero-copy.
    Mem(Arc<Vec<u8>>),
    /// The file lives on disk; readers stream chunk windows from it.
    Disk {
        /// Backing file path (shared by all splits of the file).
        path: Arc<PathBuf>,
        /// Backing file length in bytes.
        len: usize,
    },
}

impl SplitBytes {
    /// Length of the whole backing file.
    pub fn len(&self) -> usize {
        match self {
            SplitBytes::Mem(d) => d.len(),
            SplitBytes::Disk { len, .. } => *len,
        }
    }

    /// True when the backing file is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// One unit of map-task input.
#[derive(Debug, Clone)]
pub struct InputSplit {
    /// The backing file's bytes (splits address a range of it).
    pub data: SplitBytes,
    /// Split start offset (inclusive).
    pub start: usize,
    /// Split end offset (exclusive; the line containing `end-1` is
    /// finished by this split).
    pub end: usize,
    /// Node holding the block.
    pub home_node: usize,
    /// Logical input source tag (multi-input jobs).
    pub source: u8,
    /// True for a typed hand-off split: the bytes are varint-framed
    /// `(key, value)` records instead of newline-delimited text.
    pub framed: bool,
}

impl InputSplit {
    /// Create one split per block of `file`. Disk-backed files produce
    /// disk-backed splits; their readers stream rather than materialize.
    pub fn from_file(file: &DfsFile, source: u8) -> Vec<InputSplit> {
        let data = match &file.bytes {
            FileBytes::Mem(d) => SplitBytes::Mem(Arc::clone(d)),
            FileBytes::Disk { path, len } => SplitBytes::Disk {
                path: Arc::clone(path),
                len: *len,
            },
        };
        (0..file.num_blocks())
            .map(|b| {
                let (start, end) = file.block_range(b);
                InputSplit {
                    data: data.clone(),
                    start,
                    end,
                    home_node: file.placements[b],
                    source,
                    framed: false,
                }
            })
            .collect()
    }

    /// Frame `(key, value)` pairs into one whole-buffer typed split — the
    /// cross-round hand-off of a DAG job.
    pub fn from_pairs<'p, I>(pairs: I, home_node: usize, source: u8) -> InputSplit
    where
        I: IntoIterator<Item = &'p (Vec<u8>, Vec<u8>)>,
    {
        let mut buf = Vec::new();
        for (k, v) in pairs {
            write_record(&mut buf, k, v);
        }
        let end = buf.len();
        InputSplit {
            data: SplitBytes::Mem(Arc::new(buf)),
            start: 0,
            end,
            home_node,
            source,
            framed: true,
        }
    }

    /// Split length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True if the byte range is empty.
    pub fn is_empty(&self) -> bool {
        self.start >= self.end
    }

    /// Exact number of records this split will yield (one scan; used to
    /// size the frequency buffer's profiling stage).
    pub fn count_records(&self) -> u64 {
        let mut reader = SplitReader::new(self);
        let mut n = 0u64;
        while reader.next().is_some() {
            n += 1;
        }
        n
    }

    /// Fold the split's byte range into a running FNV-1a hash without
    /// materializing disk-backed ranges (streams [`DEFAULT_INPUT_CHUNK`]
    /// windows). Identical content hashes identically on either backing.
    pub fn digest_content(&self, mut h: u64) -> u64 {
        use crate::job::fnv1a_update;
        match &self.data {
            SplitBytes::Mem(d) => fnv1a_update(h, &d[self.start..self.end]),
            SplitBytes::Disk { path, len } => {
                let end = self.end.min(*len);
                let mut f = File::open(path.as_ref()).expect("open split backing file");
                f.seek(SeekFrom::Start(self.start as u64))
                    .expect("seek split backing file");
                let mut pos = self.start;
                let mut buf = vec![0u8; DEFAULT_INPUT_CHUNK.min(end.saturating_sub(pos))];
                while pos < end {
                    let want = buf.len().min(end - pos);
                    f.read_exact(&mut buf[..want]).expect("read split chunk");
                    h = fnv1a_update(h, &buf[..want]);
                    pos += want;
                }
                h
            }
        }
    }
}

/// A bounded window over a disk-backed split: holds `[base, base+buf.len())`
/// of the file, refilling in `chunk`-sized reads and growing only as far
/// as a straddling line requires.
#[derive(Debug)]
struct DiskWindow {
    file: File,
    file_len: usize,
    chunk: usize,
    buf: Vec<u8>,
    /// Absolute file offset of `buf[0]`.
    base: usize,
}

impl DiskWindow {
    fn open(path: &PathBuf, len: usize, chunk: usize) -> Self {
        DiskWindow {
            file: File::open(path).expect("open split backing file"),
            file_len: len,
            chunk: chunk.max(1 << 10),
            buf: Vec::new(),
            base: 0,
        }
    }

    /// Read the next chunk after the current window end into the buffer.
    fn fill(&mut self) {
        let from = self.base + self.buf.len();
        let want = self.chunk.min(self.file_len - from);
        let old = self.buf.len();
        self.buf.resize(old + want, 0);
        self.file
            .seek(SeekFrom::Start(from as u64))
            .expect("seek split backing file");
        self.file
            .read_exact(&mut self.buf[old..])
            .expect("read split chunk");
    }

    /// Ensure the window contains the line starting at absolute offset
    /// `start` up to (excluding) its terminating newline or EOF. Returns
    /// `(rel_start, rel_end, next_abs)`: the line's range within the
    /// buffer and the absolute offset of the next line.
    fn load_line(&mut self, start: usize) -> (usize, usize, usize) {
        if start < self.base || start >= self.base + self.buf.len() {
            self.base = start;
            self.buf.clear();
            self.fill();
        }
        loop {
            let rel = start - self.base;
            if let Some(i) = self.buf[rel..].iter().position(|&b| b == b'\n') {
                return (rel, rel + i, start + i + 1);
            }
            if self.base + self.buf.len() >= self.file_len {
                // Last line of the file, no trailing newline.
                return (rel, self.buf.len(), self.file_len);
            }
            // The line straddles the window: drop bytes before it, read on.
            if rel > 0 {
                self.buf.drain(..rel);
                self.base = start;
            }
            self.fill();
        }
    }
}

/// The reader's view of the split bytes.
enum Source<'a> {
    /// Zero-copy slice of a resident file.
    Mem(&'a [u8]),
    /// Chunk window over a disk-backed file.
    Disk(DiskWindow),
}

/// Lending reader producing [`Record`]s from a split. For text splits the
/// record key is the big-endian byte offset of the line and the value is
/// the line without its trailing newline; for framed splits key and value
/// are the framed pair's own bytes. Disk-backed splits are streamed
/// through a bounded chunk window (see [`SplitReader::with_chunk`]);
/// resident splits are sliced zero-copy. I/O errors on the backing file
/// panic — the simulated DFS treats its local files as infallible media.
pub struct SplitReader<'a> {
    src: Source<'a>,
    /// Absolute position of the next record.
    pos: usize,
    end: usize,
    file_len: usize,
    source: u8,
    framed: bool,
    key_buf: [u8; 8],
}

impl<'a> SplitReader<'a> {
    /// Position a reader at the split's first whole record, using the
    /// default chunk window for disk-backed splits.
    pub fn new(split: &'a InputSplit) -> Self {
        Self::with_chunk(split, DEFAULT_INPUT_CHUNK)
    }

    /// Like [`SplitReader::new`] with an explicit chunk-window size for
    /// disk-backed splits (the `input_chunk_bytes` budget knob).
    pub fn with_chunk(split: &'a InputSplit, chunk: usize) -> Self {
        let file_len = split.data.len();
        let mut pos = split.start;
        let src = match &split.data {
            SplitBytes::Mem(data) => {
                let data: &'a [u8] = data;
                if !split.framed && pos > 0 {
                    // Skip the partial first line: it belongs to the
                    // previous split.
                    while pos < data.len() && data[pos - 1] != b'\n' {
                        pos += 1;
                    }
                }
                Source::Mem(data)
            }
            SplitBytes::Disk { path, len } => {
                assert!(
                    !split.framed,
                    "framed splits are in-memory hand-offs; disk-backed framed \
                     splits are not supported"
                );
                let mut win = DiskWindow::open(path, *len, chunk);
                if pos > 0 && pos < *len {
                    // Find the newline ending the previous split's line.
                    let (_, _, next) = win.load_line(pos - 1);
                    pos = next;
                }
                Source::Disk(win)
            }
        };
        SplitReader {
            src,
            pos,
            end: split.end,
            file_len,
            source: split.source,
            framed: split.framed,
            key_buf: [0; 8],
        }
    }

    /// Bytes currently buffered by the reader (0 for zero-copy resident
    /// splits; the chunk window size for disk-backed splits). Feeds the
    /// out-of-core peak-buffer accounting.
    pub fn window_bytes(&self) -> usize {
        match &self.src {
            Source::Mem(_) => 0,
            Source::Disk(w) => w.buf.len(),
        }
    }

    /// Next record, or `None` at the end of the split.
    #[allow(clippy::should_implement_trait)] // lending iterator: borrows self
    pub fn next(&mut self) -> Option<Record<'_>> {
        if self.pos >= self.end || self.pos >= self.file_len {
            return None;
        }
        match &mut self.src {
            Source::Mem(data) => {
                let data = *data;
                if self.framed {
                    let (key, value) = read_record(data, &mut self.pos)?;
                    return Some(Record {
                        key,
                        value,
                        source: self.source,
                    });
                }
                // A line is read by the split containing its first byte.
                let line_start = self.pos;
                let mut i = self.pos;
                while i < data.len() && data[i] != b'\n' {
                    i += 1;
                }
                let line = &data[line_start..i];
                self.pos = if i < data.len() { i + 1 } else { i };
                self.key_buf = encode_u64(line_start as u64);
                Some(Record {
                    key: &self.key_buf,
                    value: line,
                    source: self.source,
                })
            }
            Source::Disk(win) => {
                let line_start = self.pos;
                let (rel_start, rel_end, next) = win.load_line(line_start);
                self.pos = next;
                self.key_buf = encode_u64(line_start as u64);
                Some(Record {
                    key: &self.key_buf,
                    value: &win.buf[rel_start..rel_end],
                    source: self.source,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::dfs::SimDfs;

    fn splits_of(text: &str, block: usize, nodes: usize) -> Vec<InputSplit> {
        let mut dfs = SimDfs::new(nodes, block);
        dfs.put("f", text.as_bytes().to_vec());
        InputSplit::from_file(dfs.get("f").unwrap(), 0)
    }

    fn read_all(split: &InputSplit) -> Vec<String> {
        let mut r = SplitReader::new(split);
        let mut out = Vec::new();
        while let Some(rec) = r.next() {
            out.push(String::from_utf8(rec.value.to_vec()).unwrap());
        }
        out
    }

    #[test]
    fn every_line_read_exactly_once_across_splits() {
        // Lines of varied length, block size chosen to cut lines mid-way.
        let text = "alpha\nbee\ncderation\nx\nlongerline\nz\n";
        for block in 1..=text.len() {
            let splits = splits_of(text, block, 3);
            let mut got: Vec<String> = splits.iter().flat_map(read_all).collect();
            let want: Vec<String> = text.lines().map(str::to_string).collect();
            got.sort();
            let mut want_sorted = want.clone();
            want_sorted.sort();
            assert_eq!(got, want_sorted, "block size {block}");
        }
    }

    #[test]
    fn record_keys_are_line_offsets() {
        let splits = splits_of("ab\ncd\n", 100, 1);
        let split = &splits[0];
        let mut r = SplitReader::new(split);
        let rec = r.next().unwrap();
        assert_eq!(crate::codec::decode_u64(rec.key), Some(0));
        let rec = r.next().unwrap();
        assert_eq!(crate::codec::decode_u64(rec.key), Some(3));
    }

    #[test]
    fn missing_trailing_newline_still_yields_last_line() {
        let splits = splits_of("one\ntwo", 100, 1);
        assert_eq!(read_all(&splits[0]), vec!["one", "two"]);
    }

    #[test]
    fn count_records_matches_read() {
        let text = "a\nbb\nccc\ndddd\n";
        for block in [2, 3, 5, 100] {
            let splits = splits_of(text, block, 2);
            let total: u64 = splits.iter().map(|s| s.count_records()).sum();
            assert_eq!(total, 4, "block {block}");
        }
    }

    #[test]
    fn source_tag_propagates() {
        let mut dfs = SimDfs::new(1, 100);
        dfs.put("f", b"x\n".to_vec());
        let splits = InputSplit::from_file(dfs.get("f").unwrap(), 7);
        let mut r = SplitReader::new(&splits[0]);
        assert_eq!(r.next().unwrap().source, 7);
    }

    #[test]
    fn empty_lines_are_records() {
        let splits = splits_of("a\n\nb\n", 100, 1);
        assert_eq!(read_all(&splits[0]), vec!["a", "", "b"]);
    }

    #[test]
    fn framed_split_round_trips_pairs() {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = vec![
            (b"k1".to_vec(), b"value one".to_vec()),
            (b"".to_vec(), b"empty key".to_vec()),
            (b"k3\nwith newline".to_vec(), b"".to_vec()),
        ];
        let split = InputSplit::from_pairs(&pairs, 2, 5);
        assert!(split.framed);
        assert_eq!(split.home_node, 2);
        assert_eq!(split.count_records(), 3);
        let mut r = SplitReader::new(&split);
        for (k, v) in &pairs {
            let rec = r.next().unwrap();
            assert_eq!(rec.key, &k[..]);
            assert_eq!(rec.value, &v[..]);
            assert_eq!(rec.source, 5);
        }
        assert!(r.next().is_none());
    }

    #[test]
    fn framed_keys_pass_through_untouched() {
        // Newlines inside framed records must not split them: the framed
        // reader is the codec, not the line scanner.
        let pairs = vec![(b"a".to_vec(), b"line1\nline2".to_vec())];
        let split = InputSplit::from_pairs(&pairs, 0, 0);
        let mut r = SplitReader::new(&split);
        assert_eq!(r.next().unwrap().value, b"line1\nline2");
        assert!(r.next().is_none());
    }

    fn disk_splits_of(text: &str, block: usize, nodes: usize) -> Vec<InputSplit> {
        let dir = std::env::temp_dir().join(format!("textmr-input-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // One file per distinct content so parallel tests don't collide.
        let path = dir.join(format!(
            "in-{:016x}.txt",
            crate::job::fnv1a(text.as_bytes())
        ));
        std::fs::write(&path, text.as_bytes()).unwrap();
        let mut dfs = SimDfs::new(nodes, block);
        dfs.put_path("f", &path).unwrap();
        InputSplit::from_file(dfs.get("f").unwrap(), 0)
    }

    /// Disk-backed splits must yield byte-identical records (keys and
    /// values) to their resident twins at every block size and with chunk
    /// windows smaller than a line (forcing straddle handling).
    #[test]
    fn disk_backing_matches_mem_at_all_block_and_chunk_sizes() {
        let text = "alpha\nbee\ncderation\nx\nlongerline\nz\nno-newline-tail";
        for block in [1, 2, 3, 5, 7, 11, 100] {
            let mem = splits_of(text, block, 3);
            let disk = disk_splits_of(text, block, 3);
            assert_eq!(mem.len(), disk.len(), "block {block}");
            for chunk in [1, 4, 1 << 20] {
                for (m, d) in mem.iter().zip(&disk) {
                    let mut mr = SplitReader::new(m);
                    // Tiny chunks are clamped to 1 KiB internally; still
                    // exercises refills for multi-KiB lines elsewhere.
                    let mut dr = SplitReader::with_chunk(d, chunk);
                    loop {
                        let a = mr.next().map(|r| (r.key.to_vec(), r.value.to_vec()));
                        let b = dr.next().map(|r| (r.key.to_vec(), r.value.to_vec()));
                        assert_eq!(a, b, "block {block} chunk {chunk}");
                        if a.is_none() {
                            break;
                        }
                    }
                }
            }
        }
    }

    /// Lines longer than the chunk window must still come back whole.
    #[test]
    fn disk_window_grows_past_chunk_for_long_lines() {
        let long = "x".repeat(5000);
        let text = format!("short\n{long}\ntail\n");
        let disk = disk_splits_of(&text, 1 << 20, 1);
        let mut r = SplitReader::with_chunk(&disk[0], 1 << 10);
        assert_eq!(r.next().unwrap().value, b"short");
        let rec = r.next().unwrap();
        assert_eq!(rec.value.len(), 5000);
        assert!(r.window_bytes() >= 5000);
        assert_eq!(r.next().unwrap().value, b"tail");
        assert!(r.next().is_none());
    }

    /// Content digests are backing-independent.
    #[test]
    fn digest_is_identical_across_backings() {
        let text = "alpha\nbee\ncderation\nx\n";
        let mem = splits_of(text, 7, 2);
        let disk = disk_splits_of(text, 7, 2);
        for (m, d) in mem.iter().zip(&disk) {
            assert_eq!(m.digest_content(1234), d.digest_content(1234));
        }
    }
}
