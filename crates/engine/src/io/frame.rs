//! Compressed framed run format with a per-run frame index — the
//! out-of-core intermediate representation.
//!
//! A *framed run* is a sequence of sorted, varint-framed `(key, value)`
//! records packed into fixed-target-size **frames**. Each frame is
//! independently compressed (the LZ77 coder in [`crate::io::compress`]),
//! so any consumer — the map-side k-way merge, a shuffle fetcher, the
//! reduce-side merge — can decode one frame-sized window at a time
//! instead of materializing the whole run. Frame boundaries always fall
//! on record boundaries.
//!
//! On-disk layout of one run (see DESIGN.md §3i for the diagram):
//!
//! ```text
//! run   := frame*
//! frame := flags:u8  raw_len:varint  stored_len:varint  check:varint  payload
//! flags := 0 (payload = raw record bytes)
//!        | 1 (payload = compressed record bytes)
//! check := low 32 bits of FNV-1a over the raw record bytes
//! ```
//!
//! A frame is stored compressed only when compression actually shrinks
//! it; incompressible frames ship raw so `stored_len ≤ raw_len + O(1)`
//! always holds. The **frame index** (one [`FrameMeta`] per frame) lives
//! beside the run — in the spill file's in-memory partition index, never
//! inside the byte stream — and is what lets readers seek to a window
//! without scanning.

use crate::codec::{read_varint, write_record, write_varint};
use crate::io::compress::{compress, decompress};
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::PathBuf;

/// Frame `flags` value: payload is raw record bytes.
pub const FRAME_RAW: u8 = 0;
/// Frame `flags` value: payload is LZ77-compressed record bytes.
pub const FRAME_COMPRESSED: u8 = 1;

/// Default target uncompressed frame size (64 KiB, like a compression
/// block: large enough to amortize headers, small enough that a handful
/// of open windows stay cheap).
pub const DEFAULT_FRAME_BYTES: usize = 64 << 10;

/// Index entry for one frame of a framed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameMeta {
    /// Byte offset of the frame header *within the run*.
    pub offset: u64,
    /// Stored bytes of the whole frame (header + payload).
    pub stored_len: u32,
    /// Uncompressed payload bytes.
    pub raw_len: u32,
    /// Records in the frame.
    pub records: u32,
}

/// Why decoding a frame failed.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameError {
    /// The byte stream ended inside a frame header or payload.
    Truncated,
    /// The `flags` byte is neither [`FRAME_RAW`] nor [`FRAME_COMPRESSED`].
    BadFlags(u8),
    /// The payload failed to decompress, decoded to the wrong length, or
    /// missed the header's FNV-1a checksum of the raw bytes.
    Corrupt,
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Truncated => write!(f, "framed run truncated mid-frame"),
            FrameError::BadFlags(b) => write!(f, "unknown frame flags byte {b:#04x}"),
            FrameError::Corrupt => write!(f, "frame payload failed to decompress"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<FrameError> for io::Error {
    fn from(e: FrameError) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, e.to_string())
    }
}

/// Builds one framed run in memory: records accumulate in a raw buffer
/// and are sealed into compressed frames at the target size. The encoder
/// holds at most one raw frame (`target` bytes) plus the stored output.
#[derive(Debug)]
pub struct FrameEncoder {
    target: usize,
    raw: Vec<u8>,
    raw_records: u32,
    out: Vec<u8>,
    metas: Vec<FrameMeta>,
    total_records: u64,
}

impl FrameEncoder {
    /// New encoder targeting `target` uncompressed bytes per frame
    /// (clamped to ≥ 1 KiB).
    pub fn new(target: usize) -> Self {
        FrameEncoder {
            target: target.max(1 << 10),
            raw: Vec::new(),
            raw_records: 0,
            out: Vec::new(),
            metas: Vec::new(),
            total_records: 0,
        }
    }

    /// Append one record; seals a frame when the raw buffer reaches the
    /// target size.
    pub fn push_record(&mut self, key: &[u8], value: &[u8]) {
        write_record(&mut self.raw, key, value);
        self.raw_records += 1;
        self.total_records += 1;
        if self.raw.len() >= self.target {
            self.seal();
        }
    }

    fn seal(&mut self) {
        if self.raw.is_empty() {
            return;
        }
        let offset = self.out.len() as u64;
        let packed = compress(&self.raw);
        let (flags, payload): (u8, &[u8]) = if packed.len() < self.raw.len() {
            (FRAME_COMPRESSED, &packed)
        } else {
            (FRAME_RAW, &self.raw)
        };
        self.out.push(flags);
        write_varint(&mut self.out, self.raw.len() as u64);
        write_varint(&mut self.out, payload.len() as u64);
        write_varint(&mut self.out, u64::from(raw_check(&self.raw)));
        self.out.extend_from_slice(payload);
        self.metas.push(FrameMeta {
            offset,
            stored_len: (self.out.len() as u64 - offset) as u32,
            raw_len: self.raw.len() as u32,
            records: self.raw_records,
        });
        self.raw.clear();
        self.raw_records = 0;
    }

    /// Uncompressed bytes currently buffered (the open frame).
    pub fn buffered_bytes(&self) -> usize {
        self.raw.len()
    }

    /// Seal the open frame and return `(stored run bytes, frame index,
    /// total records)`.
    pub fn finish(mut self) -> (Vec<u8>, Vec<FrameMeta>, u64) {
        self.seal();
        (self.out, self.metas, self.total_records)
    }
}

/// Decode one frame's payload from `run[meta.offset..]` into raw record
/// bytes, validating the header against the index entry.
pub fn decode_frame(stored: &[u8], meta: &FrameMeta) -> Result<Vec<u8>, FrameError> {
    let start = meta.offset as usize;
    let end = start + meta.stored_len as usize;
    if end > stored.len() {
        return Err(FrameError::Truncated);
    }
    decode_frame_bytes(&stored[start..end])
}

/// Low 32 bits of FNV-1a over the raw record bytes — the frame header's
/// integrity check (the LZ77 coder alone cannot detect payload damage).
fn raw_check(raw: &[u8]) -> u32 {
    crate::job::fnv1a(raw) as u32
}

/// Decode one complete frame (`header + payload`) into raw record bytes,
/// verifying length and checksum.
pub fn decode_frame_bytes(frame: &[u8]) -> Result<Vec<u8>, FrameError> {
    let Some((&flags, rest)) = frame.split_first() else {
        return Err(FrameError::Truncated);
    };
    let mut pos = 0usize;
    let raw_len = read_varint(rest, &mut pos).ok_or(FrameError::Truncated)? as usize;
    let stored_len = read_varint(rest, &mut pos).ok_or(FrameError::Truncated)? as usize;
    let check = read_varint(rest, &mut pos).ok_or(FrameError::Truncated)? as u32;
    let payload = rest
        .get(pos..pos + stored_len)
        .ok_or(FrameError::Truncated)?;
    let raw = match flags {
        FRAME_RAW => {
            if payload.len() != raw_len {
                return Err(FrameError::Corrupt);
            }
            payload.to_vec()
        }
        FRAME_COMPRESSED => {
            let raw = decompress(payload).ok_or(FrameError::Corrupt)?;
            if raw.len() != raw_len {
                return Err(FrameError::Corrupt);
            }
            raw
        }
        other => return Err(FrameError::BadFlags(other)),
    };
    if raw_check(&raw) != check {
        return Err(FrameError::Corrupt);
    }
    Ok(raw)
}

/// Decode every frame of a stored run into one contiguous raw record
/// buffer (the *materialized* read path; the corresponding windowed path
/// is [`FrameRunCursor`]).
pub fn decode_run(stored: &[u8]) -> Result<Vec<u8>, FrameError> {
    let mut raw = Vec::new();
    for meta in scan_frames(stored)? {
        raw.extend(decode_frame(stored, &meta)?);
    }
    Ok(raw)
}

/// Walk a stored run *without* an index, recovering each frame's
/// [`FrameMeta`] from the headers (record counts come back as 0 — they
/// are index-only). Used to rebuild an index and by the corruption tests.
pub fn scan_frames(stored: &[u8]) -> Result<Vec<FrameMeta>, FrameError> {
    let mut metas = Vec::new();
    let mut pos = 0usize;
    while pos < stored.len() {
        let offset = pos as u64;
        let flags = stored[pos];
        if flags != FRAME_RAW && flags != FRAME_COMPRESSED {
            return Err(FrameError::BadFlags(flags));
        }
        let mut p = pos + 1;
        let raw_len = read_varint(stored, &mut p).ok_or(FrameError::Truncated)?;
        let stored_len = read_varint(stored, &mut p).ok_or(FrameError::Truncated)? as usize;
        let _check = read_varint(stored, &mut p).ok_or(FrameError::Truncated)?;
        let end = p.checked_add(stored_len).ok_or(FrameError::Truncated)?;
        if end > stored.len() {
            return Err(FrameError::Truncated);
        }
        metas.push(FrameMeta {
            offset,
            stored_len: (end - pos) as u32,
            raw_len: raw_len as u32,
            records: 0,
        });
        pos = end;
    }
    Ok(metas)
}

/// Where a framed run's stored bytes live.
#[derive(Debug)]
enum RunBytes {
    /// Whole stored run resident in memory (e.g. a fetched shuffle run).
    Mem(Vec<u8>),
    /// A window of a file: the run occupies `[base, base + len)`.
    File { path: PathBuf, base: u64, len: u64 },
}

/// A record cursor over one framed run, decoding one frame window at a
/// time. Implements the merge contract of
/// [`crate::task::merge::RunCursor`]: `peek` exposes the current record,
/// `advance` steps to the next, loading (and decompressing) the next
/// frame only when the current window is exhausted — so peak decoded
/// memory is one frame, not one run.
#[derive(Debug)]
pub struct FrameRunCursor {
    bytes: RunBytes,
    metas: Vec<FrameMeta>,
    next_frame: usize,
    window: Vec<u8>,
    pos: usize,
    /// Current record `(key_range, value_range)` within `window`.
    cur: Option<(std::ops::Range<usize>, std::ops::Range<usize>)>,
}

impl FrameRunCursor {
    /// Cursor over a run stored in memory.
    pub fn from_mem(stored: Vec<u8>, metas: Vec<FrameMeta>) -> io::Result<Self> {
        let mut c = FrameRunCursor {
            bytes: RunBytes::Mem(stored),
            metas,
            next_frame: 0,
            window: Vec::new(),
            pos: 0,
            cur: None,
        };
        c.step()?;
        Ok(c)
    }

    /// Cursor over a run stored in `[base, base + len)` of the file at
    /// `path` (the spill-file partition case).
    pub fn from_file(
        path: PathBuf,
        base: u64,
        len: u64,
        metas: Vec<FrameMeta>,
    ) -> io::Result<Self> {
        let mut c = FrameRunCursor {
            bytes: RunBytes::File { path, base, len },
            metas,
            next_frame: 0,
            window: Vec::new(),
            pos: 0,
            cur: None,
        };
        c.step()?;
        Ok(c)
    }

    fn load_frame(&mut self, idx: usize) -> io::Result<Vec<u8>> {
        let meta = self.metas[idx];
        match &self.bytes {
            RunBytes::Mem(stored) => Ok(decode_frame(stored, &meta)?),
            RunBytes::File { path, base, len } => {
                let end = meta.offset + u64::from(meta.stored_len);
                if end > *len {
                    return Err(FrameError::Truncated.into());
                }
                let mut f = File::open(path)?;
                f.seek(SeekFrom::Start(base + meta.offset))?;
                let mut buf = vec![0u8; meta.stored_len as usize];
                f.read_exact(&mut buf)?;
                Ok(decode_frame_bytes(&buf)?)
            }
        }
    }

    /// Advance to the next record, loading the next frame when the
    /// current window runs dry.
    fn step(&mut self) -> io::Result<()> {
        loop {
            let mut pos = self.pos;
            if let Some((k, v)) = crate::codec::read_record(&self.window, &mut pos) {
                let kr = (k.as_ptr() as usize - self.window.as_ptr() as usize)
                    ..(k.as_ptr() as usize - self.window.as_ptr() as usize + k.len());
                let vr = (v.as_ptr() as usize - self.window.as_ptr() as usize)
                    ..(v.as_ptr() as usize - self.window.as_ptr() as usize + v.len());
                self.cur = Some((kr, vr));
                self.pos = pos;
                return Ok(());
            }
            if self.pos < self.window.len() {
                // Partial record at the end of a frame: frames end on
                // record boundaries, so this is corruption.
                self.cur = None;
                return Err(FrameError::Corrupt.into());
            }
            if self.next_frame >= self.metas.len() {
                self.cur = None;
                return Ok(());
            }
            let idx = self.next_frame;
            self.next_frame += 1;
            self.window = self.load_frame(idx)?;
            self.pos = 0;
        }
    }

    /// Current record, or `None` when exhausted.
    pub fn peek(&self) -> Option<(&[u8], &[u8])> {
        self.cur
            .as_ref()
            .map(|(k, v)| (&self.window[k.clone()], &self.window[v.clone()]))
    }

    /// Step past the current record.
    pub fn advance(&mut self) -> io::Result<()> {
        self.step()
    }

    /// Decoded bytes currently resident (the open window).
    pub fn window_bytes(&self) -> usize {
        self.window.len()
    }
}

/// An on-disk store of framed runs, used for shuffle-fetched runs and
/// intermediate merge passes in streamed mode. Runs append to one file;
/// each is addressed by the [`RunHandle`] returned at append time. The
/// backing file is deleted when the store drops.
#[derive(Debug)]
pub struct RunStore {
    path: PathBuf,
    file: File,
    offset: u64,
}

/// Address of one run inside a [`RunStore`].
#[derive(Debug, Clone)]
pub struct RunHandle {
    /// Offset of the run's first frame in the store file.
    pub base: u64,
    /// Stored length of the run.
    pub len: u64,
    /// The run's frame index.
    pub metas: Vec<FrameMeta>,
    /// Total records in the run.
    pub records: u64,
}

impl RunStore {
    /// Create (truncating) a store at `path`.
    pub fn create(path: PathBuf) -> io::Result<Self> {
        let file = File::create(&path)?;
        Ok(RunStore {
            path,
            file,
            offset: 0,
        })
    }

    /// Append one stored run (frames + index from a [`FrameEncoder`]).
    pub fn append(
        &mut self,
        stored: &[u8],
        metas: Vec<FrameMeta>,
        records: u64,
    ) -> io::Result<RunHandle> {
        self.file.write_all(stored)?;
        let handle = RunHandle {
            base: self.offset,
            len: stored.len() as u64,
            metas,
            records,
        };
        self.offset += stored.len() as u64;
        Ok(handle)
    }

    /// Open a windowed cursor over a stored run.
    pub fn cursor(&mut self, h: &RunHandle) -> io::Result<FrameRunCursor> {
        self.file.flush()?;
        FrameRunCursor::from_file(self.path.clone(), h.base, h.len, h.metas.clone())
    }
}

impl Drop for RunStore {
    fn drop(&mut self) {
        let _ = std::fs::remove_file(&self.path);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn encode(pairs: &[(&[u8], &[u8])], target: usize) -> (Vec<u8>, Vec<FrameMeta>, u64) {
        let mut enc = FrameEncoder::new(target);
        for (k, v) in pairs {
            enc.push_record(k, v);
        }
        enc.finish()
    }

    fn drain(mut c: FrameRunCursor) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out = Vec::new();
        while let Some((k, v)) = c.peek() {
            out.push((k.to_vec(), v.to_vec()));
            c.advance().unwrap();
        }
        out
    }

    #[test]
    fn roundtrip_across_frame_boundaries() {
        // Repetitive values compress; the 1 KiB floor forces several frames.
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..200)
            .map(|i| (format!("key{i:04}").into_bytes(), vec![b'v'; 40]))
            .collect();
        let refs: Vec<(&[u8], &[u8])> = pairs.iter().map(|(k, v)| (&k[..], &v[..])).collect();
        let (stored, metas, records) = encode(&refs, 1 << 10);
        assert_eq!(records, 200);
        assert!(metas.len() > 1, "expected multiple frames");
        // Index round-trip: scanning headers recovers the same geometry.
        let scanned = scan_frames(&stored).unwrap();
        assert_eq!(scanned.len(), metas.len());
        for (s, m) in scanned.iter().zip(&metas) {
            assert_eq!(
                (s.offset, s.stored_len, s.raw_len),
                (m.offset, m.stored_len, m.raw_len)
            );
        }
        let got = drain(FrameRunCursor::from_mem(stored, metas).unwrap());
        assert_eq!(got, pairs);
    }

    #[test]
    fn incompressible_frames_ship_raw() {
        // A pseudo-random byte value defeats the LZ coder.
        let mut x = 0x9e3779b97f4a7c15u64;
        let val: Vec<u8> = (0..3000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x >> 33) as u8
            })
            .collect();
        let (stored, metas, _) = encode(&[(b"k", &val)], 1 << 10);
        assert_eq!(stored[metas[0].offset as usize], FRAME_RAW);
        let got = drain(FrameRunCursor::from_mem(stored, metas).unwrap());
        assert_eq!(got[0].1, val);
    }

    #[test]
    fn truncated_frame_is_an_error() {
        let (mut stored, metas, _) = encode(&[(b"key", &vec![b'a'; 5000])], 1 << 10);
        stored.truncate(stored.len() - 1);
        assert!(matches!(
            decode_frame(&stored, metas.last().unwrap()),
            Err(FrameError::Truncated)
        ));
        assert!(matches!(scan_frames(&stored), Err(FrameError::Truncated)));
    }

    #[test]
    fn corrupt_payload_is_an_error() {
        let (mut stored, metas, _) = encode(&[(b"key", &vec![b'a'; 5000])], 1 << 10);
        let m = metas[0];
        assert_eq!(stored[m.offset as usize], FRAME_COMPRESSED);
        // Flip a payload byte: decompression must fail or mis-size.
        let mid = m.offset as usize + m.stored_len as usize / 2;
        stored[mid] ^= 0xff;
        match decode_frame(&stored, &m) {
            Err(FrameError::Corrupt) | Err(FrameError::Truncated) => {}
            other => panic!("corrupt frame decoded: {other:?}"),
        }
    }

    #[test]
    fn bad_flags_byte_is_an_error() {
        let (mut stored, metas, _) = encode(&[(b"k", b"v")], 1 << 10);
        stored[metas[0].offset as usize] = 7;
        assert_eq!(
            decode_frame(&stored, &metas[0]),
            Err(FrameError::BadFlags(7))
        );
    }

    #[test]
    fn run_store_round_trips_runs() {
        let dir = std::env::temp_dir().join(format!("textmr-frames-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut store = RunStore::create(dir.join("runs.bin")).unwrap();
        let a: Vec<(Vec<u8>, Vec<u8>)> = (0..50)
            .map(|i| (format!("a{i:03}").into_bytes(), b"1".to_vec()))
            .collect();
        let b: Vec<(Vec<u8>, Vec<u8>)> = (0..50)
            .map(|i| (format!("b{i:03}").into_bytes(), b"2".to_vec()))
            .collect();
        let mut handles = Vec::new();
        for run in [&a, &b] {
            let mut enc = FrameEncoder::new(1 << 10);
            for (k, v) in run.iter() {
                enc.push_record(k, v);
            }
            let (stored, metas, records) = enc.finish();
            handles.push(store.append(&stored, metas, records).unwrap());
        }
        let got_a = drain(store.cursor(&handles[0]).unwrap());
        let got_b = drain(store.cursor(&handles[1]).unwrap());
        assert_eq!(got_a, a);
        assert_eq!(got_b, b);
    }

    #[test]
    fn empty_run_yields_no_frames() {
        let (stored, metas, records) = FrameEncoder::new(1 << 10).finish();
        assert!(stored.is_empty() && metas.is_empty() && records == 0);
        let c = FrameRunCursor::from_mem(stored, metas).unwrap();
        assert!(c.peek().is_none());
    }
}
