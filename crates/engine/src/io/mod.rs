//! Storage and input: the simulated DFS, input splits, and spill files.

pub mod compress;
pub mod dfs;
pub mod input;
pub mod spill_file;
