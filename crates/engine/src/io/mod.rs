//! Storage and input: the simulated DFS, input splits, spill files, and
//! the out-of-core framed run format.

pub mod compress;
pub mod dfs;
pub mod frame;
pub mod input;
pub mod spill_file;

/// Out-of-core streaming knobs, carried by
/// [`ClusterConfig`](crate::cluster::ClusterConfig) and threaded into map
/// and reduce tasks. The default is **off**: the engine runs the legacy
/// materialized paths byte-for-byte, so every shipped figure is
/// unaffected unless a config opts in.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamingConfig {
    /// Write intermediates (spills, map outputs) as compressed framed
    /// runs with per-run frame indexes (see [`crate::io::frame`]) instead
    /// of bare record streams. This changes the on-disk and on-wire byte
    /// format, so signatures are comparable only within framed mode.
    pub framed: bool,
    /// Target uncompressed bytes per frame.
    pub frame_bytes: usize,
    /// Read framed intermediates by materializing whole runs up front
    /// instead of streaming one frame window at a time. The bytes on disk
    /// and on the wire are identical either way — this toggles only
    /// residency, which is what the streamed-vs-materialized determinism
    /// tests pin.
    pub materialize_reads: bool,
    /// Chunk-window size for disk-backed input splits.
    pub input_chunk_bytes: usize,
}

impl Default for StreamingConfig {
    fn default() -> Self {
        StreamingConfig {
            framed: false,
            frame_bytes: frame::DEFAULT_FRAME_BYTES,
            materialize_reads: false,
            input_chunk_bytes: input::DEFAULT_INPUT_CHUNK,
        }
    }
}

impl StreamingConfig {
    /// Streaming on with default sizes: framed intermediates, windowed
    /// reads, chunked input.
    pub fn streamed() -> Self {
        StreamingConfig {
            framed: true,
            ..Default::default()
        }
    }

    /// Framed intermediates with whole-run (materialized) reads — the
    /// byte-identical reference point for the streamed path.
    pub fn materialized() -> Self {
        StreamingConfig {
            framed: true,
            materialize_reads: true,
            ..Default::default()
        }
    }
}
