//! Cluster configuration, the job driver, and virtual-time scheduling.
//!
//! A cluster is N nodes × (map slots, reduce slots) over a shared network
//! model — matching the paper's two testbeds: a local cluster running 12
//! mappers and 12 reducers on 6 worker machines, and a 20-node EC2
//! cluster. Tasks execute for real — sequentially, or on a bounded pool of
//! worker threads when [`ClusterConfig::worker_threads`] > 1; results are
//! identical either way because every task writes into its own isolated
//! spill directory and the driver collects outputs and profiles in task-id
//! order, not completion order. Independently of how tasks execute, they
//! are *scheduled in virtual time* onto node slots to compute the job
//! makespan:
//!
//! * map tasks run on their input block's home node (locality);
//! * reduce tasks start when the map phase ends (no early-shuffle overlap —
//!   a simplification; the paper also treats shuffle as a distinct phase);
//! * a failed map or reduce attempt occupies its slot for the virtual time
//!   it burned, then the retry is rescheduled on the same node;
//! * straggler nodes (declared in the job's [`FaultPlan`]) stretch their
//!   virtual task durations by a factor; opt-in speculative execution
//!   ([`JobConfig::speculation`]) launches a backup attempt on the fastest
//!   other node for any task lagging the median span — first completion in
//!   virtual time wins, and the loser's spill directory is reclaimed.

use crate::controller::{
    fixed_spill_factory, EmitFilterFactory, FilterCtx, SpillControllerFactory, TaskCtx,
};
use crate::event::{AttemptKey, ClusterShape, ReduceAttempt, Scheduler};
use crate::fault::{FaultPlan, SpeculationConfig};
use crate::io::dfs::SimDfs;
use crate::io::input::InputSplit;
use crate::io::StreamingConfig;
use crate::job::Job;
use crate::metrics::{JobProfile, Op, SpeculationStats, TaskProfile, TaskSpan, VNanos};
use crate::net::NetworkConfig;
use crate::pool::run_indexed;
use crate::shuffle::MAX_FETCHERS;
use crate::task::map_task::{run_map_task, MapOutput, MapTaskConfig, MapTaskError};
use crate::task::reduce_task::{
    run_reduce_task, Grouping, ReduceResult, ReduceTaskConfig, ReduceTaskError,
};
use crate::trace::{
    build_reduce_trace, AttemptKind, EdgeEnd, EdgeKind, EntryDetail, FlowTrace, JobTrace, LaneRole,
    SpanKind, TaskKind, TraceEdge, TraceEntry,
};
use std::collections::BTreeMap;
// textmr-lint: allow(unordered-iteration, reason = "per-node lookups only; never iterated")
use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Cluster shape and resources.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Number of worker nodes.
    pub nodes: usize,
    /// Concurrent map tasks per node.
    pub map_slots_per_node: usize,
    /// Concurrent reduce tasks per node.
    pub reduce_slots_per_node: usize,
    /// Shuffle network model.
    pub network: NetworkConfig,
    /// Map-side spill buffer capacity M per task, in bytes (Hadoop's
    /// `io.sort.mb`).
    pub spill_buffer_bytes: usize,
    /// Directory for spill files; defaults to a per-process temp dir.
    pub temp_dir: Option<PathBuf>,
    /// Maximum merge fan-in (Hadoop's `io.sort.factor`): more runs than
    /// this trigger multi-pass merging through scratch disk.
    pub merge_fan_in: usize,
    /// Compress map-output partitions (the paper's future-work item:
    /// trade map CPU for shuffle bytes). Off by default, like Hadoop's
    /// `mapred.compress.map.output`.
    pub compress_map_output: bool,
    /// Worker threads for *real* task execution. `1` (the default) runs
    /// every task inline on the caller's thread, exactly as before; larger
    /// values run map attempts and reduce tasks on a bounded pool of scoped
    /// threads. Outputs and timing-free profile counters
    /// ([`JobProfile::signature`](crate::metrics::JobProfile::signature))
    /// are identical either way; measured virtual durations vary with real
    /// execution timing (pool contention, run-to-run jitter), as they
    /// always have.
    pub worker_threads: usize,
    /// Parallel shuffle fetchers per reduce task (Hadoop's `parallel
    /// copies`). `1` (the default) is the sequential legacy behaviour with
    /// independent-flow network accounting; larger values fetch on a
    /// bounded pool and price concurrent flows through the contention-aware
    /// NIC model (see [`crate::shuffle`]). Outputs and signatures are
    /// identical at any setting; clamped to
    /// [`crate::shuffle::MAX_FETCHERS`].
    pub shuffle_fetchers: usize,
    /// Out-of-core streaming knobs (see [`StreamingConfig`]). Default off:
    /// every legacy path runs byte-for-byte. With `framed` on, spills, map
    /// outputs and shuffle payloads become compressed framed runs with
    /// per-run frame indexes; `materialize_reads` then toggles whole-run
    /// vs one-frame-window residency without changing a single stored or
    /// shuffled byte.
    pub streaming: StreamingConfig,
    /// Optional per-map-task RAM budget in bytes. `Some(B)` turns framed
    /// streaming on and derives the task's tracked buffers from `B` (see
    /// [`ClusterConfig::effective_streaming`] /
    /// [`ClusterConfig::effective_spill_buffer_bytes`]):
    ///
    /// * spill buffer  = `min(spill_buffer_bytes, B/2)` (≥ 4 KiB)
    /// * input window  = `min(input_chunk_bytes, B/8)` (≥ 1 KiB)
    /// * frame window  = `min(frame_bytes, B/16)` (≥ 1 KiB)
    ///
    /// During the producer phase the task holds the spill buffer plus one
    /// input window (≤ 5B/8); during the merge it holds at most
    /// `merge_fan_in + 1` frame windows (≤ 11B/16 at the default fan-in of
    /// 10) — either way under `B`, which is what
    /// [`TaskProfile::peak_buffer_bytes`](crate::metrics::TaskProfile::peak_buffer_bytes)
    /// tracks and the `oocore` bench asserts. Unlike the paper's fixed
    /// spill-percentage trigger, the budget composes with the adaptive
    /// controller ([`crate::controller::AdaptiveBudget`]), which moves the
    /// spill *fraction* inside the budgeted buffer.
    pub map_budget_bytes: Option<usize>,
}

impl ClusterConfig {
    /// The paper's local cluster: 12 mappers + 12 reducers on 6 workers.
    pub fn local() -> Self {
        ClusterConfig {
            nodes: 6,
            map_slots_per_node: 2,
            reduce_slots_per_node: 2,
            network: NetworkConfig::local_cluster(),
            spill_buffer_bytes: 4 << 20,
            temp_dir: None,
            merge_fan_in: 10,
            compress_map_output: false,
            worker_threads: 1,
            shuffle_fetchers: 1,
            streaming: StreamingConfig::default(),
            map_budget_bytes: None,
        }
    }

    /// The paper's EC2 cluster: 20 nodes, weaker per-flow network.
    pub fn ec2() -> Self {
        ClusterConfig {
            nodes: 20,
            map_slots_per_node: 2,
            reduce_slots_per_node: 2,
            network: NetworkConfig::ec2_cluster(),
            spill_buffer_bytes: 4 << 20,
            temp_dir: None,
            merge_fan_in: 10,
            compress_map_output: false,
            worker_threads: 1,
            shuffle_fetchers: 1,
            streaming: StreamingConfig::default(),
            map_budget_bytes: None,
        }
    }

    /// A single-node configuration for tests.
    pub fn single_node() -> Self {
        ClusterConfig {
            nodes: 1,
            map_slots_per_node: 1,
            reduce_slots_per_node: 1,
            network: NetworkConfig::local_cluster(),
            spill_buffer_bytes: 1 << 20,
            temp_dir: None,
            merge_fan_in: 10,
            compress_map_output: false,
            worker_threads: 1,
            shuffle_fetchers: 1,
            streaming: StreamingConfig::default(),
            map_budget_bytes: None,
        }
    }

    /// Builder: set the worker-thread count (clamped to at least 1).
    pub fn with_worker_threads(mut self, n: usize) -> Self {
        self.worker_threads = n.max(1);
        self
    }

    /// Builder: set the per-reduce-task shuffle fetcher count (clamped to
    /// at least 1; [`run_job`] further clamps to
    /// [`crate::shuffle::MAX_FETCHERS`]).
    pub fn with_shuffle_fetchers(mut self, n: usize) -> Self {
        self.shuffle_fetchers = n.max(1);
        self
    }

    /// Builder: set the out-of-core streaming knobs.
    pub fn with_streaming(mut self, s: StreamingConfig) -> Self {
        self.streaming = s;
        self
    }

    /// Builder: set a per-map-task RAM budget (turns framed streaming on;
    /// see [`ClusterConfig::map_budget_bytes`] for the derivation).
    pub fn with_map_budget(mut self, bytes: usize) -> Self {
        self.map_budget_bytes = Some(bytes);
        self
    }

    /// The streaming knobs a run actually uses: [`ClusterConfig::streaming`]
    /// with [`ClusterConfig::map_budget_bytes`]'s derivation applied (a
    /// budget forces framed mode and shrinks the input and frame windows to
    /// its share of `B`).
    pub fn effective_streaming(&self) -> StreamingConfig {
        let mut s = self.streaming;
        if let Some(b) = self.map_budget_bytes {
            s.framed = true;
            s.input_chunk_bytes = s.input_chunk_bytes.min((b / 8).max(1 << 10));
            s.frame_bytes = s.frame_bytes.min((b / 16).max(1 << 10));
        }
        s
    }

    /// The spill-buffer capacity a run actually uses:
    /// [`ClusterConfig::spill_buffer_bytes`] clamped to half of any
    /// [`ClusterConfig::map_budget_bytes`].
    pub fn effective_spill_buffer_bytes(&self) -> usize {
        match self.map_budget_bytes {
            Some(b) => self.spill_buffer_bytes.min((b / 2).max(4 << 10)),
            None => self.spill_buffer_bytes,
        }
    }

    pub(crate) fn resolve_temp_dir(&self) -> io::Result<PathBuf> {
        static JOB_SEQ: AtomicU64 = AtomicU64::new(0);
        let seq = JOB_SEQ.fetch_add(1, Ordering::Relaxed);
        let dir = match &self.temp_dir {
            Some(d) => d.clone(),
            None => Self::default_temp_root().join(format!("textmr-{}", std::process::id())),
        }
        .join(format!("job{seq}"));
        std::fs::create_dir_all(&dir)?;
        Ok(dir)
    }

    /// Default spill-file root. `TEXTMR_TMP` wins; otherwise a tmpfs
    /// (`/dev/shm`) is preferred when present: spill I/O then costs a
    /// stable memcpy instead of noisy device latency, which keeps the
    /// measured profiles reproducible (see DESIGN.md — the paper's
    /// *relative* effects survive, absolute I/O costs are testbed-specific
    /// either way).
    fn default_temp_root() -> PathBuf {
        // textmr-lint: allow(wall-clock-flows-to-schedule, reason = "the env read only picks the spill directory; no path byte reaches a schedule, signature, or output")
        if let Ok(d) = std::env::var("TEXTMR_TMP") {
            return PathBuf::from(d);
        }
        let shm = PathBuf::from("/dev/shm");
        if shm.is_dir() {
            return shm;
        }
        std::env::temp_dir()
    }
}

/// Job-level policy: reducers, optimization plug-ins, fault injection.
#[derive(Clone)]
pub struct JobConfig {
    /// Number of reduce tasks (partitions).
    pub num_reducers: usize,
    /// Spill-fraction policy factory; default Hadoop-style fixed 0.8.
    pub spill_controller: SpillControllerFactory,
    /// Optional emit-filter factory (frequency-buffering).
    pub emit_filter: Option<EmitFilterFactory>,
    /// Fraction of the spill buffer carved out for the emit filter, so
    /// total memory stays fixed (the paper devotes 30%).
    pub filter_budget_fraction: f64,
    /// Seeded deterministic fault plan: per-attempt map/reduce record
    /// faults, spill-write faults, transient shuffle-fetch faults, and
    /// per-node straggler factors. Empty by default. See [`crate::fault`].
    pub fault_plan: FaultPlan,
    /// Maximum attempts per map task, per reduce task, and per shuffle
    /// fetch before the job aborts.
    pub max_attempts: usize,
    /// Reduce-side grouping strategy (sort-merge by default; hash grouping
    /// skips the sort for order-insensitive jobs — Sec. II-A).
    pub grouping: Grouping,
    /// Speculative-execution policy. `None` (the default) disables backup
    /// attempts. When set, a task whose virtual span exceeds the policy's
    /// threshold of the median span gets a backup on the fastest other
    /// node; first completion in virtual time wins. Opt-in because a
    /// winning backup moves the task (changing shuffle locality and hence
    /// `shuffled_bytes`), trading signature stability for makespan.
    pub speculation: Option<SpeculationConfig>,
    /// Record a deterministic virtual-time trace of every task attempt
    /// into [`JobRun::trace`] (see [`crate::trace`]). Off by default; the
    /// untraced path records nothing and allocates nothing, so profiles and
    /// outputs are byte-identical with the flag off.
    pub trace: bool,
    /// Optional map-output cache (see [`crate::cache`]): a hit skips the
    /// map task and replays its cached output at a flat virtual lookup
    /// cost. `None` by default — single-job runs are unaffected.
    pub map_cache: Option<crate::cache::MapCacheConfig>,
    /// Stream the Chrome-trace export to this path instead of returning
    /// an in-memory [`JobTrace`] (see [`crate::trace::stream`]). Requires
    /// [`trace`](JobConfig::trace); when set, [`JobRun::trace`] is `None`
    /// and the file at this path is the byte-identical equivalent of
    /// `trace.to_chrome_json()` — span events are spooled to disk as each
    /// attempt's entry retires and the full JSON string is never resident.
    /// The out-of-core bench uses this so a multi-GB run's trace does not
    /// defeat its own memory budget.
    pub trace_stream: Option<PathBuf>,
}

impl Default for JobConfig {
    fn default() -> Self {
        JobConfig {
            num_reducers: 4,
            spill_controller: fixed_spill_factory(0.8),
            emit_filter: None,
            filter_budget_fraction: 0.3,
            fault_plan: FaultPlan::new(),
            max_attempts: 4,
            grouping: Grouping::Sort,
            speculation: None,
            trace: false,
            map_cache: None,
            trace_stream: None,
        }
    }
}

impl JobConfig {
    /// Convenience: set the reducer count.
    pub fn with_reducers(mut self, n: usize) -> Self {
        self.num_reducers = n;
        self
    }

    /// Convenience: install a fault plan.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Convenience: enable speculative execution.
    pub fn with_speculation(mut self, spec: SpeculationConfig) -> Self {
        self.speculation = Some(spec);
        self
    }

    /// Convenience: enable virtual-time tracing.
    pub fn with_trace(mut self) -> Self {
        self.trace = true;
        self
    }

    /// Convenience: enable tracing AND stream the Chrome-trace export to
    /// `path` (see [`JobConfig::trace_stream`]).
    pub fn with_trace_stream(mut self, path: impl Into<PathBuf>) -> Self {
        self.trace = true;
        self.trace_stream = Some(path.into());
        self
    }
}

/// A completed job: outputs per partition plus the full profile.
#[derive(Debug)]
pub struct JobRun {
    /// Final `(key, value)` pairs, per partition, key-sorted.
    pub outputs: Vec<Vec<(Vec<u8>, Vec<u8>)>>,
    /// Aggregated instrumentation.
    pub profile: JobProfile,
    /// Virtual-time trace of every scheduled attempt; `Some` iff
    /// [`JobConfig::trace`] was set and the export was not redirected to
    /// disk via [`JobConfig::trace_stream`].
    pub trace: Option<JobTrace>,
}

impl JobRun {
    /// Flatten all partitions into one key-sorted list (convenient for
    /// assertions; stable across engine configurations).
    pub fn sorted_pairs(&self) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut all: Vec<_> = self.outputs.iter().flatten().cloned().collect();
        all.sort();
        all
    }
}

/// Removes the job's temp directory on every exit path (success, error,
/// panic), so aborted jobs do not leak spill files into tmpfs.
struct TempDirGuard<'a>(&'a Path);

impl Drop for TempDirGuard<'_> {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(self.0);
    }
}

/// Outcome of one map task's full retry loop, as produced on a worker.
enum MapTaskOutcome {
    /// The task completed; carries every attempt's virtual duration
    /// (failed attempts first) for slot scheduling.
    Done {
        attempts: Vec<VNanos>,
        out: MapOutput,
        prof: Box<TaskProfile>,
        /// Whether the output came from the map-output cache (a hit is
        /// never offered back to the cache).
        cached: bool,
    },
    /// All `max_attempts` attempts failed.
    Exhausted { attempts: usize },
    /// An I/O error killed the task outright.
    Failed(io::Error),
    /// The task gave up because another task had already doomed the job.
    Cancelled,
}

/// Outcome of one reduce task's full retry loop (mirror of
/// [`MapTaskOutcome`]).
enum ReduceTaskOutcome {
    /// The task completed; carries every attempt's virtual duration
    /// (failed attempts first) for slot scheduling.
    Done {
        attempts: Vec<VNanos>,
        res: Box<ReduceResult>,
    },
    /// All `max_attempts` attempts failed.
    Exhausted { attempts: usize },
    /// An I/O error (including exhausted shuffle-fetch retries) killed the
    /// task outright.
    Failed(io::Error),
    /// The task gave up because another task had already doomed the job.
    Cancelled,
}

/// A captured speculative-backup placement for the trace: `(task, node,
/// slot, start, end, flat outcome)` — the outcome is `None` when the backup
/// won the race and owns the task's detailed lanes.
type BackupCapture = (usize, usize, usize, VNanos, VNanos, Option<AttemptKind>);

/// The frequent-key registry's designated-publisher assignment: sorted
/// `(node, publisher task)` pairs, plus every map task's home node.
pub(crate) type RegistryAssignment = (Vec<(usize, usize)>, Vec<usize>);

/// Median of a set of virtual durations (0 for the empty set; upper
/// median for even counts).
fn median(mut v: Vec<VNanos>) -> VNanos {
    if v.is_empty() {
        return 0;
    }
    v.sort_unstable();
    v[v.len() / 2]
}

/// The slice of a [`TraceEntry`] that cross-entry edge assembly needs.
///
/// A streamed DAG export spools each entry's span events to disk as its
/// round retires and keeps only this metadata resident, so whole-DAG
/// lane vectors never accumulate in memory. Batch exports derive the same
/// metas on the fly; both routes feed [`assemble_trace_edges`], which is
/// what guarantees the two exports emit identical edge lists.
#[derive(Debug, Clone, Copy)]
pub(crate) struct EntryMeta {
    kind: TaskKind,
    round: usize,
    task: usize,
    attempt: usize,
    backup: bool,
    /// Entry end time (feeds the whole-trace wall clock).
    pub(crate) end: VNanos,
    /// True when the entry carries detailed lanes (the attempt of record).
    pub(crate) is_record: bool,
}

impl EntryMeta {
    /// Capture the edge-relevant metadata of one entry.
    pub(crate) fn of(e: &TraceEntry) -> EntryMeta {
        EntryMeta {
            kind: e.kind,
            round: e.round,
            task: e.task,
            attempt: e.attempt,
            backup: e.backup,
            end: e.end,
            is_record: matches!(e.detail, EntryDetail::Lanes(_)),
        }
    }

    /// Entry fields used by the DAG hand-off edge builder.
    pub(crate) fn handoff_key(&self) -> (TaskKind, usize, usize, usize, bool) {
        (self.kind, self.round, self.task, self.attempt, self.backup)
    }
}

/// Ground-truth happens-before edges for a job trace.
///
/// Scheduling-level edges come off the unified event loop's attempt log
/// (slot chains in record order; retry and backup hand-offs); intra-task
/// edges come from the producer-side structure of the assembled entries
/// (spill segments feeding the map-side merge; each flow group's arrival
/// preceding the reduce-lane merge; map outputs published before the
/// reduce attempts that fetch them). `registry` — present when an emit
/// filter was installed — is the frequent-key registry's
/// designated-publisher assignment: sorted `(node, publisher task)`
/// pairs, plus every map task's home node.
/// `registries[r]` is round `r`'s assignment (or `None`); `map_base[r]` /
/// `reduce_base[r]` are the global task-id offsets the scheduler used for
/// round `r`, so entries (which carry round-local task ids) can be matched
/// back to the shared attempt log of a multi-round DAG.
pub(crate) fn build_trace_edges(
    entries: &[TraceEntry],
    sched: &Scheduler,
    registries: &[Option<RegistryAssignment>],
    map_base: &[usize],
    reduce_base: &[usize],
) -> Vec<TraceEdge> {
    let metas: Vec<EntryMeta> = entries.iter().map(EntryMeta::of).collect();
    let mut spill = Vec::new();
    let mut barrier = Vec::new();
    for (i, e) in entries.iter().enumerate() {
        let (s, b) = intra_entry_edges(i, e);
        spill.extend(s);
        barrier.extend(b);
    }
    assemble_trace_edges(
        &metas,
        sched,
        registries,
        map_base,
        reduce_base,
        spill,
        barrier,
    )
}

/// Assemble the full edge list from per-entry metadata plus the intra-entry
/// edges already extracted by [`intra_entry_edges`]. Edge order matches the
/// historical `build_trace_edges` exactly (slot chains, scheduler edges,
/// map-output barriers, spill hand-ins, shuffle barriers, registry), so
/// batch and streamed exports stay byte-identical.
pub(crate) fn assemble_trace_edges(
    metas: &[EntryMeta],
    sched: &Scheduler,
    registries: &[Option<RegistryAssignment>],
    map_base: &[usize],
    reduce_base: &[usize],
    spill: Vec<TraceEdge>,
    barrier: Vec<TraceEdge>,
) -> Vec<TraceEdge> {
    let global_key = |e: &EntryMeta| {
        let base = match e.kind {
            TaskKind::Map => map_base.get(e.round).copied().unwrap_or(0),
            TaskKind::Reduce => reduce_base.get(e.round).copied().unwrap_or(0),
        };
        AttemptKey {
            kind: e.kind,
            task: base + e.task,
            attempt: e.attempt,
            backup: e.backup,
        }
    };
    let mut index: BTreeMap<AttemptKey, usize> = BTreeMap::new();
    for (i, e) in metas.iter().enumerate() {
        index.insert(global_key(e), i);
    }
    let mut edges = Vec::new();
    // Slot chains: consecutive *traced* occupants of each (phase, node,
    // slot), walked in the scheduler's record order so an attempt that
    // left no entry (e.g. a zero-length cancelled backup) links its
    // neighbours instead of breaking the chain.
    let mut chain_last: BTreeMap<(TaskKind, usize, usize), usize> = BTreeMap::new();
    for rec in sched.attempts() {
        let Some(&ei) = index.get(&rec.key) else {
            continue;
        };
        let slot_key = (rec.key.kind, rec.node, rec.slot);
        if let Some(&prev) = chain_last.get(&slot_key) {
            edges.push(TraceEdge {
                kind: EdgeKind::Slot,
                src: EdgeEnd::entry(prev),
                dst: EdgeEnd::entry(ei),
            });
        }
        chain_last.insert(slot_key, ei);
    }
    // Retry chains and speculative hand-offs, straight off the graph.
    for se in sched.sched_edges() {
        if se.kind == EdgeKind::Slot {
            continue; // emitted above, robust to untraced attempts
        }
        let (Some(&si), Some(&di)) = (index.get(&se.src), index.get(&se.dst)) else {
            continue;
        };
        edges.push(TraceEdge {
            kind: se.kind,
            src: EdgeEnd::entry(si),
            dst: EdgeEnd::entry(di),
        });
    }
    // Attempts of record: the entries carrying detailed lanes.
    let mut map_records: Vec<(usize, usize, usize)> = Vec::new(); // (round, task, entry)
    let mut reduce_records: Vec<(usize, usize)> = Vec::new(); // (round, entry)
    for (i, e) in metas.iter().enumerate() {
        if !e.is_record {
            continue;
        }
        match e.kind {
            TaskKind::Map => map_records.push((e.round, e.task, i)),
            TaskKind::Reduce => reduce_records.push((e.round, i)),
        }
    }
    // Every map output is complete before any reduce attempt fetches it
    // (the barrier is per map task: its of-record completion enables each
    // reducer's whole fetch of that output). Shuffles stay within a round.
    for &(mr, _, mi) in &map_records {
        for &(rr, ri) in &reduce_records {
            if mr != rr {
                continue;
            }
            edges.push(TraceEdge {
                kind: EdgeKind::MapOut,
                src: EdgeEnd::entry(mi),
                dst: EdgeEnd::entry(ri),
            });
        }
    }
    // Spill hand-ins (per map record, entry order), then shuffle barriers
    // (per reduce record, entry order) — extracted per entry by
    // `intra_entry_edges` at assembly time (batch) or entry-retirement
    // time (streamed); concatenation order matches the historical loops.
    edges.extend(spill);
    edges.extend(barrier);
    // Frequent-key registry hand-offs: the node's designated publisher
    // (its lowest map task id) froze the shared key set; every same-node
    // map task adopted it. A real-time protocol — the checker validates
    // these as protocol edges, outside the virtual-time clocks.
    for (round, reg) in registries.iter().enumerate() {
        let Some((groups, homes)) = reg else {
            continue;
        };
        let record_of: BTreeMap<usize, usize> = map_records
            .iter()
            .filter(|&&(r, _, _)| r == round)
            .map(|&(_, t, i)| (t, i))
            .collect();
        for &(node, publisher) in groups {
            let Some(&pi) = record_of.get(&publisher) else {
                continue;
            };
            for (t, &home) in homes.iter().enumerate() {
                if home != node || t == publisher {
                    continue;
                }
                if let Some(&wi) = record_of.get(&t) {
                    edges.push(TraceEdge {
                        kind: EdgeKind::Registry,
                        src: EdgeEnd::entry(pi),
                        dst: EdgeEnd::entry(wi),
                    });
                }
            }
        }
    }
    edges
}

/// Intra-task edges derivable from one entry alone: spill hand-ins
/// (support-lane spill segments feeding the map lane's end-of-task merge)
/// and shuffle barriers (each flow group's last arrival preceding the
/// reduce lane's first post-shuffle op). `i` is the entry's index in the
/// trace, baked into the returned [`EdgeEnd`]s. Non-record entries (flat
/// detail) yield nothing. Returned as `(spill, barrier)` so the assembler
/// can keep the two edge families in their historical positions.
pub(crate) fn intra_entry_edges(i: usize, e: &TraceEntry) -> (Vec<TraceEdge>, Vec<TraceEdge>) {
    let EntryDetail::Lanes(lanes) = &e.detail else {
        return (Vec::new(), Vec::new());
    };
    let mut spill = Vec::new();
    let mut barrier = Vec::new();
    match e.kind {
        TaskKind::Map => {
            // Spill hand-ins: each support-lane spill segment is written
            // before the map lane's end-of-task merge reads it.
            let map_li = lanes.iter().position(|l| l.role == LaneRole::Map);
            let support_li = lanes.iter().position(|l| l.role == LaneRole::Support);
            if let (Some(mli), Some(sli)) = (map_li, support_li) {
                if let Some(merge_si) = lanes[mli]
                    .spans
                    .iter()
                    .position(|s| s.kind == SpanKind::Op(Op::Merge))
                {
                    for (si, s) in lanes[sli].spans.iter().enumerate() {
                        if s.kind == SpanKind::Op(Op::SpillWrite) {
                            spill.push(TraceEdge {
                                kind: EdgeKind::Spill,
                                src: EdgeEnd::span(i, sli, si),
                                dst: EdgeEnd::span(i, mli, merge_si),
                            });
                        }
                    }
                }
            }
        }
        TaskKind::Reduce => {
            // Shuffle barriers: a flow group's last span (the run fully
            // arrived) precedes the reduce lane's first post-shuffle op
            // (the merge that consumes it).
            let first_op = lanes
                .iter()
                .position(|l| l.role == LaneRole::Reduce)
                .and_then(|li| {
                    lanes[li]
                        .spans
                        .iter()
                        .position(|s| matches!(s.kind, SpanKind::Op(_)))
                        .map(|si| (li, si))
                });
            if let Some((rli, rsi)) = first_op {
                for (li, lane) in lanes.iter().enumerate() {
                    if !matches!(lane.role, LaneRole::Fetcher(_)) {
                        continue;
                    }
                    let mut groups: BTreeMap<u32, usize> = BTreeMap::new();
                    for (si, s) in lane.spans.iter().enumerate() {
                        if let Some(src) = s.flow {
                            groups.insert(src, si); // ascending → keeps the last
                        }
                    }
                    for (_, last_si) in groups {
                        barrier.push(TraceEdge {
                            kind: EdgeKind::Barrier,
                            src: EdgeEnd::span(i, li, last_si),
                            dst: EdgeEnd::span(i, rli, rsi),
                        });
                    }
                }
            }
        }
    }
    (spill, barrier)
}

/// Fresh unified event loop sized to the cluster, with `cfg`'s straggler
/// factors. A DAG job builds one scheduler and threads it through every
/// round, so cross-round virtual time is continuous.
pub(crate) fn new_scheduler(cluster: &ClusterConfig, cfg: &JobConfig) -> Scheduler {
    Scheduler::new(
        ClusterShape {
            nodes: cluster.nodes,
            map_slots: cluster.map_slots_per_node.max(1),
            reduce_slots: cluster.reduce_slots_per_node.max(1),
            fetchers: cluster.shuffle_fetchers.clamp(1, MAX_FETCHERS),
        },
        (0..cluster.nodes)
            .map(|n| cfg.fault_plan.node_factor(n))
            .collect(),
    )
}

/// Run `job` over the named DFS inputs on the given cluster.
///
/// `inputs` pairs a DFS file name with its logical source tag (tags matter
/// only for multi-input jobs such as repartition joins).
///
/// One round on a fresh scheduler: exactly the legacy one-shot pipeline.
/// Multi-round DAG jobs drive `run_round` through
/// [`crate::dag::DagExecutor`] instead.
pub fn run_job(
    cluster: &ClusterConfig,
    cfg: &JobConfig,
    job: Arc<dyn Job>,
    dfs: &SimDfs,
    inputs: &[(&str, u8)],
) -> io::Result<JobRun> {
    let temp = cluster.resolve_temp_dir()?;
    let _cleanup = TempDirGuard(&temp);

    // ---- plan splits ----------------------------------------------------------
    let mut splits: Vec<InputSplit> = Vec::new();
    for (name, source) in inputs {
        let file = dfs.get(name).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no DFS file {name}"))
        })?;
        splits.extend(InputSplit::from_file(file, *source));
    }

    let mut vsched = new_scheduler(cluster, cfg);
    let RoundRun {
        outputs,
        profile,
        entries,
        registry,
    } = run_round(
        cluster,
        cfg,
        job,
        &splits,
        RoundCtx {
            round: 0,
            map_task_base: 0,
            reduce_task_base: 0,
            vsched: &mut vsched,
            temp: &temp,
        },
    )?;
    let trace = if cfg.trace {
        let twall = entries
            .iter()
            .map(|e| e.end)
            .max()
            .unwrap_or(0)
            .max(profile.wall);
        let edges = build_trace_edges(&entries, &vsched, &[registry], &[0], &[0]);
        let map_slots = cluster.map_slots_per_node.max(1);
        let reduce_slots = cluster.reduce_slots_per_node.max(1);
        let fetchers = cluster
            .shuffle_fetchers
            .clamp(1, crate::shuffle::MAX_FETCHERS);
        if let Some(path) = &cfg.trace_stream {
            // Streamed export: spool each entry's span events to disk and
            // drop the entry; the full JSON is never resident. Byte parity
            // with `to_chrome_json()` is guaranteed because both routes
            // share the emission helpers (see `trace::stream`).
            let mut w = crate::trace::stream::TraceStreamWriter::create(
                path.clone(),
                cluster.nodes,
                map_slots,
                reduce_slots,
                fetchers,
            )?;
            for e in entries {
                w.push_entry(&e)?;
            }
            w.finish(twall, &edges)?;
            None
        } else {
            Some(JobTrace {
                nodes: cluster.nodes,
                map_slots,
                reduce_slots,
                fetchers,
                wall: twall,
                edges,
                entries,
            })
        }
    } else {
        None
    };
    Ok(JobRun {
        outputs,
        trace,
        profile,
    })
}

/// Where one round sits inside a (possibly multi-round) job.
pub(crate) struct RoundCtx<'a> {
    /// Round index (0 for single-round jobs).
    pub round: usize,
    /// Global map task-id offset inside the shared scheduler.
    pub map_task_base: usize,
    /// Global reduce task-id offset inside the shared scheduler.
    pub reduce_task_base: usize,
    /// The job-wide unified event loop, shared across rounds.
    pub vsched: &'a mut Scheduler,
    /// The job-wide temp directory (round-qualified names inside).
    pub temp: &'a Path,
}

/// One round's results: real outputs, its virtual-time profile, and (when
/// tracing) its round-stamped trace entries plus registry assignment.
pub(crate) struct RoundRun {
    /// Per-partition output pairs.
    pub outputs: Vec<Vec<(Vec<u8>, Vec<u8>)>>,
    /// The round's profile (spans, op times, shuffle stats, speculation).
    pub profile: JobProfile,
    /// Round-stamped trace entries (empty when tracing is off).
    pub entries: Vec<TraceEntry>,
    /// Frequent-key registry assignment, when an emit filter ran.
    pub registry: Option<RegistryAssignment>,
}

/// Execute one map→shuffle→reduce round on the shared event loop.
///
/// With `round == 0`, zero bases, and a fresh scheduler this IS the legacy
/// single-shot pipeline, bit for bit: the scheduler sees the same task
/// ids, the reservation recurrence starts from the same all-zero slot
/// frees, and round-0 trace entries export byte-identically to pre-DAG
/// traces. Later rounds pass global task-id bases (so attempt keys stay
/// unique in the shared event graph) and a round stamp for the trace.
pub(crate) fn run_round(
    cluster: &ClusterConfig,
    cfg: &JobConfig,
    job: Arc<dyn Job>,
    splits: &[InputSplit],
    ctx: RoundCtx<'_>,
) -> io::Result<RoundRun> {
    assert!(cfg.num_reducers > 0, "need at least one reducer");
    assert!(
        (0.0..1.0).contains(&cfg.filter_budget_fraction),
        "filter budget fraction must be in [0,1)"
    );
    let RoundCtx {
        round,
        map_task_base,
        reduce_task_base,
        vsched,
        temp,
    } = ctx;
    let workers = cluster.worker_threads.max(1);

    // ---- execute map tasks (real), collecting per-attempt durations -----------
    let streaming = cluster.effective_streaming();
    let spill_buffer = cluster.effective_spill_buffer_bytes();
    let filter_budget = if cfg.emit_filter.is_some() {
        (spill_buffer as f64 * cfg.filter_budget_fraction) as usize
    } else {
        0
    };
    let pipeline_capacity = (spill_buffer - filter_budget).max(1024);

    // A task that exhausts its retries (or hits an I/O error) sets this
    // flag; in-flight tasks notice it between input records and bail with
    // `Cancelled`, and queued tasks never start real work — the pool drains
    // promptly instead of grinding through a doomed job.
    let cancel = Arc::new(AtomicBool::new(false));
    // Lowest task id per node: the designated publisher for the node's
    // frequent-key registry slot. Deterministic (derived from the split
    // plan), unlike "whichever task froze first" under a worker pool.
    // textmr-lint: allow(unordered-iteration, reason = "keyed by node for lookups; never iterated")
    let mut node_first_task: HashMap<usize, usize> = HashMap::new();
    for (t, split) in splits.iter().enumerate() {
        node_first_task
            .entry(split.home_node % cluster.nodes)
            .or_insert(t);
    }
    let run_one_map_task = |t: usize| -> MapTaskOutcome {
        if cancel.load(Ordering::Relaxed) {
            return MapTaskOutcome::Cancelled;
        }
        let split = &splits[t];
        let node = split.home_node % cluster.nodes;
        // Map-output cache: a hit rematerializes the cached partitions
        // into a fresh attempt dir and charges the flat lookup cost —
        // the map (and any fault fated for it) never executes. Keys are
        // unique per (job prefix, round, task, split digest), so each
        // key sees at most one `get` per wave and per-key cache state
        // stays deterministic under the worker pool.
        if let Some(mc) = &cfg.map_cache {
            let key = crate::cache::map_cache_key(&mc.key_prefix, round, t, split);
            if let Some(hit) = mc.cache.get(&key) {
                let attempt_dir = temp.join(format!("rd{round}_t{t}_a0"));
                if let Err(e) = std::fs::create_dir_all(&attempt_dir) {
                    cancel.store(true, Ordering::Relaxed);
                    return MapTaskOutcome::Failed(e);
                }
                return match hit.materialize(
                    &attempt_dir.join("cached.spill"),
                    node,
                    mc.lookup_cost_ns,
                    cfg.trace,
                ) {
                    Ok((out, prof)) => MapTaskOutcome::Done {
                        attempts: vec![prof.virtual_duration],
                        out,
                        prof: Box::new(prof),
                        cached: true,
                    },
                    Err(e) => {
                        cancel.store(true, Ordering::Relaxed);
                        MapTaskOutcome::Failed(e)
                    }
                };
            }
        }
        let mut attempts: Vec<VNanos> = Vec::new();
        let mut attempt = 0usize;
        loop {
            // Every attempt spills into its own directory: a retry never
            // reuses (or trips over) a dead attempt's files, even when
            // other tasks are running concurrently in the same job temp.
            let attempt_dir = temp.join(format!("rd{round}_t{t}_a{attempt}"));
            if let Err(e) = std::fs::create_dir_all(&attempt_dir) {
                cancel.store(true, Ordering::Relaxed);
                return MapTaskOutcome::Failed(e);
            }
            let ctx = TaskCtx { node, task: t };
            // An inactive filter (e.g. frequency-buffering on a job with
            // no combiner) is dropped and its budget returned to the spill
            // buffer — total memory is constant either way.
            let filter = cfg
                .emit_filter
                .as_ref()
                .map(|f| {
                    f(FilterCtx {
                        task: ctx,
                        job: Arc::clone(&job),
                        budget_bytes: filter_budget,
                        estimated_records: split.count_records(),
                        node_first_task: node_first_task.get(&node).copied().unwrap_or(t),
                        cancel: Some(Arc::clone(&cancel)),
                    })
                })
                .filter(|f| f.is_active());
            let task_cfg = MapTaskConfig {
                task_id: t,
                node,
                num_partitions: cfg.num_reducers,
                buffer_capacity: if filter.is_some() {
                    pipeline_capacity
                } else {
                    spill_buffer
                },
                controller: (cfg.spill_controller)(ctx),
                filter,
                merge_fan_in: cluster.merge_fan_in,
                compress_output: cluster.compress_map_output,
                spill_dir: attempt_dir.clone(),
                fail_after_records: cfg.fault_plan.map_fault(t, attempt),
                fail_spill: cfg.fault_plan.spill_fault(t, attempt),
                cancel: Some(Arc::clone(&cancel)),
                trace: cfg.trace,
                streaming,
            };
            match run_map_task(&job, split, task_cfg) {
                Ok((out, prof)) => {
                    attempts.push(prof.virtual_duration);
                    return MapTaskOutcome::Done {
                        attempts,
                        out,
                        prof: Box::new(prof),
                        cached: false,
                    };
                }
                Err(MapTaskError::Injected { virtual_elapsed }) => {
                    attempts.push(virtual_elapsed);
                    let _ = std::fs::remove_dir_all(&attempt_dir);
                    attempt += 1;
                    if attempt >= cfg.max_attempts {
                        cancel.store(true, Ordering::Relaxed);
                        return MapTaskOutcome::Exhausted { attempts: attempt };
                    }
                }
                Err(MapTaskError::Io(e)) => {
                    cancel.store(true, Ordering::Relaxed);
                    return MapTaskOutcome::Failed(e);
                }
                Err(MapTaskError::Cancelled) => return MapTaskOutcome::Cancelled,
            }
        }
    };
    let map_results = run_indexed(workers, splits.len(), run_one_map_task);

    let mut map_outputs: Vec<MapOutput> = Vec::with_capacity(splits.len());
    let mut map_profiles = Vec::with_capacity(splits.len());
    // Per task: virtual durations of every attempt (failed attempts first).
    let mut attempt_durations: Vec<Vec<VNanos>> = Vec::with_capacity(splits.len());
    // Results arrive in task-id order; the first hard failure seen is the
    // lowest-numbered one, matching the error a sequential run reports.
    let mut failure: Option<io::Error> = None;
    for (t, outcome) in map_results.into_iter().enumerate() {
        match outcome {
            MapTaskOutcome::Done {
                attempts,
                out,
                prof,
                cached,
            } => {
                // Offer misses back to the cache here — sequentially, in
                // task-id order — so admission and eviction never depend
                // on worker-pool timing.
                if !cached {
                    if let Some(mc) = &cfg.map_cache {
                        let key = crate::cache::map_cache_key(&mc.key_prefix, round, t, &splits[t]);
                        if let Ok(c) = crate::cache::CachedMapOutput::capture(&out, &prof) {
                            mc.cache.put(&key, Arc::new(c));
                        }
                    }
                }
                attempt_durations.push(attempts);
                map_outputs.push(out);
                map_profiles.push(*prof);
            }
            MapTaskOutcome::Exhausted { attempts } => {
                failure.get_or_insert_with(|| {
                    io::Error::other(format!("map task {t} failed {attempts} attempts"))
                });
            }
            MapTaskOutcome::Failed(e) => {
                failure.get_or_insert(e);
            }
            MapTaskOutcome::Cancelled => {}
        }
    }
    if let Some(e) = failure {
        return Err(e);
    }

    // ---- virtual-schedule the map phase ---------------------------------------
    // All virtual placement goes through the unified event loop
    // ([`crate::event::Scheduler`]): one integer priority queue drives
    // slot reservations, speculation probes, and (with parallel fetchers)
    // the shared-ingress reduce simulation, while the event graph records
    // every attempt's enabling predecessors for the race checker. The
    // scheduler is shared across a DAG job's rounds, so placements are
    // keyed by globally unique task ids (`map_task_base + t`).
    let mut map_spans = Vec::with_capacity(splits.len());
    // When tracing: per task, every attempt's (slot, start, end) placement.
    let mut map_sched: Vec<Vec<(usize, VNanos, VNanos)>> = Vec::new();
    for (t, split) in splits.iter().enumerate() {
        // Earliest-free slot on the home node; a retry can only start
        // after its previous attempt failed. A straggler node stretches
        // the attempt's virtual duration by its factor.
        let node = split.home_node % cluster.nodes;
        let placed = vsched.place_map(map_task_base + t, node, &attempt_durations[t]);
        if cfg.trace {
            map_sched.push(placed.iter().map(|p| (p.slot, p.start, p.end)).collect());
        }
        let (span_start, span_end) = placed.last().map(|p| (p.start, p.end)).unwrap_or((0, 0));
        map_spans.push(TaskSpan {
            node,
            start: span_start,
            end: span_end,
        });
    }

    // ---- speculative execution: map phase -------------------------------------
    // A task whose scheduled span exceeds the policy threshold of the
    // median span gets a backup attempt on the fastest other node,
    // launched (in virtual time) at the moment the lag becomes
    // detectable. The backup re-executes the task for real — its output
    // bytes depend only on the input split, so either copy is valid — and
    // whichever attempt finishes first in virtual time wins; the loser's
    // spill directory is reclaimed immediately. Simplification: a loser's
    // slot reservation is not retroactively shrunk (no cascading
    // reschedule of already-placed tasks) — speculation here is a
    // tail-latency patch, not a full re-plan.
    let mut spec_stats = SpeculationStats::default();
    // When tracing: backup attempts' placements, and which tasks' primary
    // lost its speculative race (its final attempt renders as a flat
    // "speculation-lost" span; the backup owns the detailed lanes).
    let mut map_backups: Vec<BackupCapture> = Vec::new();
    let mut map_lost_to_backup = vec![false; if cfg.trace { splits.len() } else { 0 }];
    if let Some(spec) = cfg.speculation.as_ref().filter(|_| cluster.nodes > 1) {
        let threshold = spec.threshold();
        let med = median(map_spans.iter().map(|s| s.end - s.start).collect());
        for t in 0..splits.len() {
            let (home, p_start, p_end) = {
                let s = &map_spans[t];
                (s.node, s.start, s.end)
            };
            let dur = p_end - p_start;
            if med == 0 || (dur as u128) * 100 <= (med as u128) * (threshold as u128) {
                continue;
            }
            let detect = p_start + med.saturating_mul(threshold) / 100;
            if detect >= p_end {
                continue;
            }
            let Some(backup_node) = cfg.fault_plan.fastest_other_node(cluster.nodes, home) else {
                continue;
            };
            let spec_dir = temp.join(format!("rd{round}_t{t}_spec"));
            if std::fs::create_dir_all(&spec_dir).is_err() {
                continue;
            }
            spec_stats.map_backups += 1;
            let split = &splits[t];
            // The filter context keeps the *home* node's identity so the
            // backup's output is byte-identical to the primary's (the
            // frequent-key registry is first-decision-wins, so a re-run
            // publisher is harmless); only the output's placement moves.
            let ctx = TaskCtx {
                node: home,
                task: t,
            };
            let filter = cfg
                .emit_filter
                .as_ref()
                .map(|f| {
                    f(FilterCtx {
                        task: ctx,
                        job: Arc::clone(&job),
                        budget_bytes: filter_budget,
                        estimated_records: split.count_records(),
                        node_first_task: node_first_task.get(&home).copied().unwrap_or(t),
                        cancel: None,
                    })
                })
                .filter(|f| f.is_active());
            let task_cfg = MapTaskConfig {
                task_id: t,
                node: backup_node,
                num_partitions: cfg.num_reducers,
                buffer_capacity: if filter.is_some() {
                    pipeline_capacity
                } else {
                    spill_buffer
                },
                controller: (cfg.spill_controller)(ctx),
                filter,
                merge_fan_in: cluster.merge_fan_in,
                compress_output: cluster.compress_map_output,
                spill_dir: spec_dir.clone(),
                fail_after_records: cfg.fault_plan.map_backup_fault(t),
                fail_spill: None,
                cancel: None,
                trace: cfg.trace,
                streaming,
            };
            let origin = AttemptKey {
                kind: TaskKind::Map,
                task: map_task_base + t,
                attempt: attempt_durations[t].len().saturating_sub(1),
                backup: false,
            };
            let bkey = AttemptKey {
                kind: TaskKind::Map,
                task: map_task_base + t,
                attempt: 0,
                backup: true,
            };
            match run_map_task(&job, split, task_cfg) {
                Ok((out_b, prof_b)) => {
                    let (slot, free) = vsched.probe_backup(TaskKind::Map, backup_node);
                    let start_b = free.max(detect);
                    let end_b =
                        start_b + cfg.fault_plan.scale(backup_node, prof_b.virtual_duration);
                    if end_b < p_end {
                        // Backup wins: it becomes the task of record; the
                        // primary is cancelled and its final attempt's
                        // spill directory reclaimed.
                        spec_stats.map_wins += 1;
                        vsched.commit_backup(bkey, origin, backup_node, slot, start_b, end_b);
                        map_spans[t] = TaskSpan {
                            node: backup_node,
                            start: start_b,
                            end: end_b,
                        };
                        // Dropping the loser's MapOutput deletes its spill
                        // file; then its (now empty) directory goes too.
                        drop(std::mem::replace(&mut map_outputs[t], out_b));
                        let final_attempt = attempt_durations[t].len().saturating_sub(1);
                        let _ = std::fs::remove_dir_all(
                            temp.join(format!("rd{round}_t{t}_a{final_attempt}")),
                        );
                        map_profiles[t] = prof_b;
                        if cfg.trace {
                            map_lost_to_backup[t] = true;
                            map_backups.push((t, backup_node, slot, start_b, end_b, None));
                        }
                    } else {
                        // Primary wins: the backup is cancelled the moment
                        // the primary completes; its slot frees then.
                        let end_b = p_end.max(start_b);
                        vsched.commit_backup(bkey, origin, backup_node, slot, start_b, end_b);
                        drop(out_b);
                        let _ = std::fs::remove_dir_all(&spec_dir);
                        if cfg.trace && end_b > start_b {
                            map_backups.push((
                                t,
                                backup_node,
                                slot,
                                start_b,
                                end_b,
                                Some(AttemptKind::Lost),
                            ));
                        }
                    }
                }
                Err(MapTaskError::Injected { virtual_elapsed }) => {
                    // An injected fault killed the backup mid-flight: the
                    // primary stands, but the dead backup occupied its slot
                    // for the virtual time it burned before dying.
                    let (slot, free) = vsched.probe_backup(TaskKind::Map, backup_node);
                    let start_b = free.max(detect);
                    let end_b = start_b + cfg.fault_plan.scale(backup_node, virtual_elapsed);
                    vsched.commit_backup(bkey, origin, backup_node, slot, start_b, end_b);
                    let _ = std::fs::remove_dir_all(&spec_dir);
                    if cfg.trace && end_b > start_b {
                        map_backups.push((
                            t,
                            backup_node,
                            slot,
                            start_b,
                            end_b,
                            Some(AttemptKind::Dead),
                        ));
                    }
                }
                Err(_) => {
                    // A failed backup never unseats the primary.
                    let _ = std::fs::remove_dir_all(&spec_dir);
                }
            }
        }
    }
    let map_phase_end = map_spans.iter().map(|s| s.end).max().unwrap_or(0);
    // The shuffle barrier enters the event graph (enabled by every map
    // attempt recorded so far), and every reduce slot frees at it.
    vsched.begin_reduce_phase(map_phase_end);

    // ---- execute reduce tasks (real), with per-attempt retries -----------------
    // Reduce tasks are independent (each reads its own partition out of the
    // map-output files, which are opened per read), so they run on the same
    // pool. Every attempt gets a private scratch directory for multi-pass
    // merges; a failed attempt's directory is reclaimed before the retry.
    let rcancel = Arc::new(AtomicBool::new(false));
    let shuffle_faults: Option<Arc<FaultPlan>> = if cfg.fault_plan.is_empty() {
        None
    } else {
        Some(Arc::new(cfg.fault_plan.clone()))
    };
    let run_one_reduce_task = |r: usize| -> ReduceTaskOutcome {
        if rcancel.load(Ordering::Relaxed) {
            return ReduceTaskOutcome::Cancelled;
        }
        let mut attempts: Vec<VNanos> = Vec::new();
        let mut attempt = 0usize;
        loop {
            let scratch_dir = temp.join(format!("rd{round}_r{r}_a{attempt}"));
            if let Err(e) = std::fs::create_dir_all(&scratch_dir) {
                rcancel.store(true, Ordering::Relaxed);
                return ReduceTaskOutcome::Failed(e);
            }
            let res = run_reduce_task(
                &job,
                &map_outputs,
                &cluster.network,
                &ReduceTaskConfig {
                    partition: r,
                    node: r % cluster.nodes,
                    merge_fan_in: cluster.merge_fan_in,
                    scratch_dir: scratch_dir.clone(),
                    grouping: cfg.grouping,
                    fetchers: cluster.shuffle_fetchers.max(1),
                    fail_after_groups: cfg.fault_plan.reduce_fault(r, attempt),
                    faults: shuffle_faults.clone(),
                    max_fetch_attempts: cfg.max_attempts.max(1),
                    cancel: Some(Arc::clone(&rcancel)),
                    trace: cfg.trace,
                    streaming,
                },
            );
            match res {
                Ok(res) => {
                    attempts.push(res.profile.virtual_duration);
                    return ReduceTaskOutcome::Done {
                        attempts,
                        res: Box::new(res),
                    };
                }
                Err(ReduceTaskError::Injected { virtual_elapsed }) => {
                    attempts.push(virtual_elapsed);
                    let _ = std::fs::remove_dir_all(&scratch_dir);
                    attempt += 1;
                    if attempt >= cfg.max_attempts {
                        rcancel.store(true, Ordering::Relaxed);
                        return ReduceTaskOutcome::Exhausted { attempts: attempt };
                    }
                }
                Err(ReduceTaskError::Io(e)) => {
                    rcancel.store(true, Ordering::Relaxed);
                    return ReduceTaskOutcome::Failed(e);
                }
                Err(ReduceTaskError::Cancelled) => return ReduceTaskOutcome::Cancelled,
            }
        }
    };
    let reduce_outcomes = run_indexed(workers, cfg.num_reducers, run_one_reduce_task);

    let mut first_err: Option<io::Error> = None;
    let mut results: Vec<ReduceResult> = Vec::with_capacity(cfg.num_reducers);
    // Per partition: virtual durations of every attempt (failed first).
    let mut rattempt_durations: Vec<Vec<VNanos>> = Vec::with_capacity(cfg.num_reducers);
    for (r, outcome) in reduce_outcomes.into_iter().enumerate() {
        match outcome {
            ReduceTaskOutcome::Done { attempts, res } => {
                rattempt_durations.push(attempts);
                results.push(*res);
            }
            ReduceTaskOutcome::Exhausted { attempts } => {
                first_err.get_or_insert_with(|| {
                    io::Error::other(format!("reduce task {r} failed {attempts} attempts"))
                });
            }
            ReduceTaskOutcome::Failed(e) => {
                first_err.get_or_insert(e);
            }
            ReduceTaskOutcome::Cancelled => {}
        }
    }
    if let Some(e) = first_err {
        return Err(e);
    }
    // Hard assert: a violation would silently shift partition indices in
    // the scheduling loop below, attributing results to the wrong
    // partitions and dropping outputs instead of failing loudly.
    assert_eq!(
        results.len(),
        cfg.num_reducers,
        "reducer cancelled without an error"
    );

    // ---- virtual-schedule the reduce phase, in partition order -----------------
    // With one fetcher (the legacy configuration behind every shipped
    // figure) the reservation recurrence is bit-identical to the original
    // driver. With parallel fetchers the whole phase instead replays
    // through the dynamic event loop, where each node's ingress NIC is a
    // shared resource: concurrent flows into a node fair-share its
    // bandwidth regardless of which reduce task owns them, so co-located
    // reducers now contend instead of being priced in isolation.
    let mut reduce_spans = Vec::with_capacity(cfg.num_reducers);
    let mut reduce_sched: Vec<Vec<(usize, VNanos, VNanos)>> = Vec::new();
    if cluster.shuffle_fetchers.clamp(1, MAX_FETCHERS) <= 1 {
        for (r, attempts) in rattempt_durations.iter().enumerate() {
            let node = r % cluster.nodes;
            let placed = vsched.place_reduce(reduce_task_base + r, node, attempts);
            if cfg.trace {
                reduce_sched.push(placed.iter().map(|p| (p.slot, p.start, p.end)).collect());
            }
            let (span_start, span_end) = placed
                .last()
                .map(|p| (p.start, p.end))
                .unwrap_or((map_phase_end, map_phase_end));
            reduce_spans.push(TaskSpan {
                node,
                start: span_start,
                end: span_end,
            });
        }
    } else {
        // Failed attempts block their slot for the isolated virtual time
        // they burned (their partial shuffles are not replayed — a
        // documented approximation); the of-record attempt replays its
        // recorded flows through the shared-ingress NIC model.
        let tasks: Vec<(usize, Vec<ReduceAttempt>)> = rattempt_durations
            .iter()
            .enumerate()
            .map(|(r, durs)| {
                let mut attempts: Vec<ReduceAttempt> = durs[..durs.len().saturating_sub(1)]
                    .iter()
                    .map(|&dur| ReduceAttempt::Block { dur })
                    .collect();
                attempts.push(ReduceAttempt::Work {
                    flows: results[r].flow_inputs.iter().map(|fi| fi.flow).collect(),
                    post_ns: results[r].post_parts.iter().sum(),
                });
                (r % cluster.nodes, attempts)
            })
            .collect();
        let outcomes = vsched.run_reduce_phase_from(reduce_task_base, tasks);
        for (r, outs) in outcomes.iter().enumerate() {
            let node = r % cluster.nodes;
            if cfg.trace {
                reduce_sched.push(outs.iter().map(|o| (o.slot, o.start, o.end)).collect());
            }
            let last = outs.last().expect("every reducer has an attempt");
            reduce_spans.push(TaskSpan {
                node,
                start: last.start,
                end: last.end,
            });
            // Patch the of-record profile with the contention-priced
            // shuffle: under co-location the shared-ingress wait and
            // virtual time replace the isolated estimates computed inside
            // the task. Applied whether or not tracing is on, so
            // signatures and op-time totals stay consistent between
            // traced and untraced runs; without co-location the replay
            // reproduces the isolated schedule exactly, so this is a
            // no-op rewrite.
            let sh = last
                .shuffle
                .as_ref()
                .expect("of-record attempt replays its flows");
            let post_total: VNanos = results[r].post_parts.iter().sum();
            let res = &mut results[r];
            res.profile.ops.set_nanos(Op::ShuffleWait, sh.wait_ns);
            res.profile.virtual_duration = sh.virtual_ns + post_total;
            res.shuffle.wait_ns = sh.wait_ns;
            res.shuffle.virtual_ns = sh.virtual_ns;
            if cfg.trace {
                let mut sched_flows = sh.flows.clone();
                sched_flows.sort_by_key(|s| s.flow);
                let flow_traces: Vec<FlowTrace> = sched_flows
                    .iter()
                    .map(|s| {
                        let inp = res.flow_inputs[s.flow];
                        FlowTrace {
                            map_task: s.flow,
                            src_node: inp.src_node,
                            remote: inp.flow.remote,
                            io_ns: inp.flow.io_ns,
                            backoff_ns: inp.flow.backoff_ns,
                            slot: s.slot,
                            start: s.start,
                            pre_end: s.pre_end,
                            latency_end: s.latency_end,
                            transfer_end: s.transfer_end,
                            finish: s.finish,
                        }
                    })
                    .collect();
                let [merge_c, ic_c, reduce_c, write_c] = res.post_parts;
                res.profile.trace = Some(Box::new(build_reduce_trace(
                    &flow_traces,
                    sh.wait_ns,
                    sh.virtual_ns,
                    merge_c,
                    ic_c,
                    reduce_c,
                    write_c,
                )));
            }
        }
    }

    // ---- speculative execution: reduce phase -----------------------------------
    // Mirrors the map phase. The backup reducer re-fetches its partition
    // from the (final) map outputs and re-reduces for real; a winning
    // backup replaces the primary's result wholesale, so output pairs stay
    // exact. Must run before `map_outputs` is dropped.
    let mut reduce_backups: Vec<BackupCapture> = Vec::new();
    let mut reduce_lost_to_backup = vec![false; if cfg.trace { cfg.num_reducers } else { 0 }];
    if let Some(spec) = cfg.speculation.as_ref().filter(|_| cluster.nodes > 1) {
        let threshold = spec.threshold();
        let med = median(reduce_spans.iter().map(|s| s.end - s.start).collect());
        for r in 0..cfg.num_reducers {
            let (home, p_start, p_end) = {
                let s = &reduce_spans[r];
                (s.node, s.start, s.end)
            };
            let dur = p_end - p_start;
            if med == 0 || (dur as u128) * 100 <= (med as u128) * (threshold as u128) {
                continue;
            }
            let detect = p_start + med.saturating_mul(threshold) / 100;
            if detect >= p_end {
                continue;
            }
            let Some(backup_node) = cfg.fault_plan.fastest_other_node(cluster.nodes, home) else {
                continue;
            };
            let spec_dir = temp.join(format!("rd{round}_r{r}_spec"));
            if std::fs::create_dir_all(&spec_dir).is_err() {
                continue;
            }
            spec_stats.reduce_backups += 1;
            let res_b = run_reduce_task(
                &job,
                &map_outputs,
                &cluster.network,
                &ReduceTaskConfig {
                    partition: r,
                    node: backup_node,
                    merge_fan_in: cluster.merge_fan_in,
                    scratch_dir: spec_dir.clone(),
                    grouping: cfg.grouping,
                    fetchers: cluster.shuffle_fetchers.max(1),
                    fail_after_groups: None,
                    faults: None,
                    max_fetch_attempts: 1,
                    cancel: None,
                    trace: cfg.trace,
                    streaming,
                },
            );
            if let Ok(b) = res_b {
                let origin = AttemptKey {
                    kind: TaskKind::Reduce,
                    task: reduce_task_base + r,
                    attempt: rattempt_durations[r].len().saturating_sub(1),
                    backup: false,
                };
                let bkey = AttemptKey {
                    kind: TaskKind::Reduce,
                    task: reduce_task_base + r,
                    attempt: 0,
                    backup: true,
                };
                let (slot, free) = vsched.probe_backup(TaskKind::Reduce, backup_node);
                let start_b = free.max(detect);
                let end_b = start_b
                    + cfg
                        .fault_plan
                        .scale(backup_node, b.profile.virtual_duration);
                if end_b < p_end {
                    spec_stats.reduce_wins += 1;
                    vsched.commit_backup(bkey, origin, backup_node, slot, start_b, end_b);
                    reduce_spans[r] = TaskSpan {
                        node: backup_node,
                        start: start_b,
                        end: end_b,
                    };
                    results[r] = b;
                    let final_attempt = rattempt_durations[r].len().saturating_sub(1);
                    let _ = std::fs::remove_dir_all(
                        temp.join(format!("rd{round}_r{r}_a{final_attempt}")),
                    );
                    if cfg.trace {
                        reduce_lost_to_backup[r] = true;
                        reduce_backups.push((r, backup_node, slot, start_b, end_b, None));
                    }
                } else {
                    let end_b = p_end.max(start_b);
                    vsched.commit_backup(bkey, origin, backup_node, slot, start_b, end_b);
                    if cfg.trace && end_b > start_b {
                        reduce_backups.push((
                            r,
                            backup_node,
                            slot,
                            start_b,
                            end_b,
                            Some(AttemptKind::Lost),
                        ));
                    }
                }
            }
            // Reduce output lives in memory, so the backup's scratch is
            // disposable whether it won or lost.
            let _ = std::fs::remove_dir_all(&spec_dir);
        }
    }

    // ---- aggregate -------------------------------------------------------------
    let mut outputs = Vec::with_capacity(cfg.num_reducers);
    let mut reduce_profiles = Vec::with_capacity(cfg.num_reducers);
    let mut reduce_shuffles = Vec::with_capacity(cfg.num_reducers);
    let mut shuffled_bytes = 0u64;
    for res in results {
        shuffled_bytes += res.shuffle.remote_bytes;
        reduce_shuffles.push(res.shuffle);
        outputs.push(res.pairs);
        reduce_profiles.push(res.profile);
    }
    let wall = reduce_spans
        .iter()
        .map(|s| s.end)
        .max()
        .unwrap_or(map_phase_end);

    // ---- assemble the round's trace entries (opt-in) ---------------------------
    // Each attempt of record contributes its task-local lanes, shifted to
    // its scheduled start and stretched by its node's straggler factor;
    // failed attempts, speculation losers, and dead backups contribute flat
    // slot-occupancy spans. The profiles' trace payloads move into the
    // entries here, so the returned profile stays lean. Entries keep
    // round-local task ids plus the round stamp; the caller assembles the
    // whole job's `JobTrace`.
    let (entries, registry) = if cfg.trace {
        let mut entries = Vec::new();
        for (t, sched) in map_sched.iter().enumerate() {
            let node = splits[t].home_node % cluster.nodes;
            let factor = cfg.fault_plan.node_factor(node);
            let last = sched.len().saturating_sub(1);
            for (attempt, &(slot, start, end)) in sched.iter().enumerate() {
                let detail = if attempt < last {
                    EntryDetail::Flat(AttemptKind::Failed)
                } else if map_lost_to_backup[t] {
                    EntryDetail::Flat(AttemptKind::Lost)
                } else {
                    match map_profiles[t].trace.take() {
                        Some(tr) => EntryDetail::Lanes(tr.into_absolute(start, factor)),
                        None => EntryDetail::Flat(AttemptKind::Failed),
                    }
                };
                entries.push(TraceEntry {
                    kind: TaskKind::Map,
                    job: 0,
                    round,
                    task: t,
                    attempt,
                    backup: false,
                    node,
                    slot,
                    factor,
                    start,
                    end,
                    detail,
                });
            }
        }
        for (r, sched) in reduce_sched.iter().enumerate() {
            let node = r % cluster.nodes;
            let factor = cfg.fault_plan.node_factor(node);
            let last = sched.len().saturating_sub(1);
            for (attempt, &(slot, start, end)) in sched.iter().enumerate() {
                let detail = if attempt < last {
                    EntryDetail::Flat(AttemptKind::Failed)
                } else if reduce_lost_to_backup[r] {
                    EntryDetail::Flat(AttemptKind::Lost)
                } else {
                    match reduce_profiles[r].trace.take() {
                        Some(tr) => EntryDetail::Lanes(tr.into_absolute(start, factor)),
                        None => EntryDetail::Flat(AttemptKind::Failed),
                    }
                };
                entries.push(TraceEntry {
                    kind: TaskKind::Reduce,
                    job: 0,
                    round,
                    task: r,
                    attempt,
                    backup: false,
                    node,
                    slot,
                    factor,
                    start,
                    end,
                    detail,
                });
            }
        }
        for &(t, node, slot, start, end, outcome) in &map_backups {
            let factor = cfg.fault_plan.node_factor(node);
            let detail = match outcome {
                None => match map_profiles[t].trace.take() {
                    Some(tr) => EntryDetail::Lanes(tr.into_absolute(start, factor)),
                    None => EntryDetail::Flat(AttemptKind::Lost),
                },
                Some(kind) => EntryDetail::Flat(kind),
            };
            entries.push(TraceEntry {
                kind: TaskKind::Map,
                job: 0,
                round,
                task: t,
                attempt: 0,
                backup: true,
                node,
                slot,
                factor,
                start,
                end,
                detail,
            });
        }
        for &(r, node, slot, start, end, outcome) in &reduce_backups {
            let factor = cfg.fault_plan.node_factor(node);
            let detail = match outcome {
                None => match reduce_profiles[r].trace.take() {
                    Some(tr) => EntryDetail::Lanes(tr.into_absolute(start, factor)),
                    None => EntryDetail::Flat(AttemptKind::Lost),
                },
                Some(kind) => EntryDetail::Flat(kind),
            };
            entries.push(TraceEntry {
                kind: TaskKind::Reduce,
                job: 0,
                round,
                task: r,
                attempt: 0,
                backup: true,
                node,
                slot,
                factor,
                start,
                end,
                detail,
            });
        }
        // The frequent-key registry's designated-publisher assignment,
        // kept alongside the entries so the caller can build the
        // protocol's happens-before edges for this round.
        let registry = if cfg.emit_filter.is_some() {
            let homes: Vec<usize> = splits.iter().map(|s| s.home_node % cluster.nodes).collect();
            let mut groups: Vec<(usize, usize)> = node_first_task
                .iter()
                .map(|(&node, &task)| (node, task))
                .collect();
            groups.sort_unstable();
            Some((groups, homes))
        } else {
            None
        };
        (entries, registry)
    } else {
        (Vec::new(), None)
    };

    // Map outputs (and their files) are dropped here; the job-level temp
    // guard removes the whole directory once the job (all rounds) is done.
    drop(map_outputs);

    Ok(RoundRun {
        outputs,
        profile: JobProfile {
            map_tasks: map_profiles,
            reduce_tasks: reduce_profiles,
            map_spans,
            reduce_spans,
            map_phase_end,
            wall,
            shuffled_bytes,
            reduce_shuffles,
            speculation: spec_stats,
        },
        entries,
        registry,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::{decode_u64, encode_u64};
    use crate::job::{Emit, Record, ValueCursor, ValueSink};

    struct WordSum;
    impl Job for WordSum {
        fn name(&self) -> &str {
            "wordsum"
        }
        fn map(&self, r: &Record<'_>, e: &mut dyn Emit) {
            for w in r.value.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
                e.emit(w, &encode_u64(1));
            }
        }
        fn has_combiner(&self) -> bool {
            true
        }
        fn combine(&self, _k: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
            let mut s = 0;
            while let Some(v) = values.next() {
                s += decode_u64(v).unwrap();
            }
            out.push(&encode_u64(s));
        }
        fn reduce(&self, k: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
            let mut s = 0;
            while let Some(v) = values.next() {
                s += decode_u64(v).unwrap();
            }
            out.emit(k, &encode_u64(s));
        }
    }

    fn corpus(lines: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        for i in 0..lines {
            buf.extend_from_slice(format!("w{} common filler\n", i % 23).as_bytes());
        }
        buf
    }

    fn counts_of(run: &JobRun) -> std::collections::HashMap<String, u64> {
        run.sorted_pairs()
            .into_iter()
            .map(|(k, v)| (String::from_utf8(k).unwrap(), decode_u64(&v).unwrap()))
            .collect()
    }

    #[test]
    fn end_to_end_word_sum() {
        let cluster = ClusterConfig::local();
        let mut dfs = SimDfs::new(cluster.nodes, 4096);
        dfs.put("corpus", corpus(500));
        let run = run_job(
            &cluster,
            &JobConfig::default(),
            Arc::new(WordSum),
            &dfs,
            &[("corpus", 0)],
        )
        .unwrap();
        let m = counts_of(&run);
        assert_eq!(m["common"], 500);
        assert_eq!(m["filler"], 500);
        assert_eq!(m["w0"], 500u64.div_ceil(23));
        // Multiple splits → multiple map tasks.
        assert!(run.profile.map_tasks.len() > 1);
        assert!(run.profile.wall > run.profile.map_phase_end);
    }

    #[test]
    fn results_identical_across_cluster_shapes() {
        let data = corpus(300);
        let mut runs = Vec::new();
        for cluster in [
            ClusterConfig::single_node(),
            ClusterConfig::local(),
            ClusterConfig::ec2(),
        ] {
            let mut dfs = SimDfs::new(cluster.nodes, 2048);
            dfs.put("c", data.clone());
            let run = run_job(
                &cluster,
                &JobConfig::default(),
                Arc::new(WordSum),
                &dfs,
                &[("c", 0)],
            )
            .unwrap();
            runs.push(run.sorted_pairs());
        }
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn fault_injection_retries_and_output_is_unaffected() {
        let cluster = ClusterConfig::local();
        let mut dfs = SimDfs::new(cluster.nodes, 2048);
        dfs.put("c", corpus(200));
        let clean = run_job(
            &cluster,
            &JobConfig::default(),
            Arc::new(WordSum),
            &dfs,
            &[("c", 0)],
        )
        .unwrap();
        let mut cfg = JobConfig::default();
        cfg.fault_plan.insert(0, 3);
        cfg.fault_plan.insert(1, 1);
        let faulty = run_job(&cluster, &cfg, Arc::new(WordSum), &dfs, &[("c", 0)]).unwrap();
        assert_eq!(clean.sorted_pairs(), faulty.sorted_pairs());
        // Within the faulty run, the retried task's slot shows both the
        // failed attempt and the retry: its span must cover at least its
        // own successful-attempt duration.
        let t0 = &faulty.profile.map_spans[0];
        assert!(t0.end - t0.start >= faulty.profile.map_tasks[0].virtual_duration);
    }

    #[test]
    fn parallel_execution_matches_sequential_bit_for_bit() {
        let data = corpus(400);
        let mut runs = Vec::new();
        for workers in [1, 4] {
            let cluster = ClusterConfig::local().with_worker_threads(workers);
            let mut dfs = SimDfs::new(cluster.nodes, 2048);
            dfs.put("c", data.clone());
            let run = run_job(
                &cluster,
                &JobConfig::default(),
                Arc::new(WordSum),
                &dfs,
                &[("c", 0)],
            )
            .unwrap();
            runs.push(run);
        }
        assert_eq!(runs[0].outputs, runs[1].outputs);
        // Profiles are collected in task-id order regardless of which worker
        // finished first: the per-task structural counters line up exactly.
        let (seq, par) = (&runs[0].profile, &runs[1].profile);
        assert_eq!(seq.map_tasks.len(), par.map_tasks.len());
        for (s, p) in seq.map_tasks.iter().zip(&par.map_tasks) {
            assert_eq!(s.input_records, p.input_records);
            assert_eq!(s.emitted_records, p.emitted_records);
            assert_eq!(s.output_bytes, p.output_bytes);
            assert_eq!(s.spills.len(), p.spills.len());
        }
        assert_eq!(seq.shuffled_bytes, par.shuffled_bytes);
    }

    #[test]
    fn parallel_retries_match_sequential_and_do_not_collide() {
        let data = corpus(300);
        let mut cfg = JobConfig::default();
        // Fail the first attempt of several tasks at once so retries and
        // healthy tasks share the pool (and the job temp dir) concurrently.
        for t in 0..6 {
            cfg.fault_plan.insert(t, 2);
        }
        let mut pairs = Vec::new();
        for workers in [1, 4] {
            let cluster = ClusterConfig::local().with_worker_threads(workers);
            let mut dfs = SimDfs::new(cluster.nodes, 2048);
            dfs.put("c", data.clone());
            let run = run_job(&cluster, &cfg, Arc::new(WordSum), &dfs, &[("c", 0)]).unwrap();
            pairs.push(run.sorted_pairs());
        }
        assert_eq!(pairs[0], pairs[1]);
    }

    #[test]
    fn fetcher_pool_matches_sequential_shuffle() {
        let data = corpus(400);
        let mut runs = Vec::new();
        for fetchers in [1, 4] {
            let cluster = ClusterConfig::local().with_shuffle_fetchers(fetchers);
            let mut dfs = SimDfs::new(cluster.nodes, 2048);
            dfs.put("c", data.clone());
            let run = run_job(
                &cluster,
                &JobConfig::default(),
                Arc::new(WordSum),
                &dfs,
                &[("c", 0)],
            )
            .unwrap();
            runs.push(run);
        }
        let (seq, par) = (&runs[0], &runs[1]);
        assert_eq!(seq.outputs, par.outputs);
        assert_eq!(seq.profile.signature(), par.profile.signature());
        // Timing-free shuffle stats line up per reducer; the NIC model's
        // virtual time respects its bounds.
        for (s, p) in seq
            .profile
            .reduce_shuffles
            .iter()
            .zip(&par.profile.reduce_shuffles)
        {
            assert_eq!(s.fetched_bytes, p.fetched_bytes);
            assert_eq!(s.remote_bytes, p.remote_bytes);
            assert_eq!(s.size_hist, p.size_hist);
            assert_eq!(s.wait_ns, 0); // one fetcher never stalls
            assert!(p.virtual_ns <= p.sequential_ns);
            assert!(p.virtual_ns >= p.max_flow_ns);
        }
        let agg = par.profile.shuffle_stats();
        assert_eq!(agg.fetched_bytes, seq.profile.shuffle_stats().fetched_bytes);
        assert!(agg.fetchers >= 4 || agg.fetches == 0);
    }

    #[test]
    fn parallel_abort_on_exhausted_retries_terminates_promptly() {
        let cluster = ClusterConfig::local().with_worker_threads(4);
        let mut dfs = SimDfs::new(cluster.nodes, 1024);
        dfs.put("c", corpus(400));
        let mut cfg = JobConfig {
            max_attempts: 1,
            ..JobConfig::default()
        };
        cfg.fault_plan.insert(2, 1);
        let err = run_job(&cluster, &cfg, Arc::new(WordSum), &dfs, &[("c", 0)]).unwrap_err();
        assert!(
            err.to_string().contains("map task 2 failed 1 attempts"),
            "unexpected error: {err}"
        );
    }

    #[test]
    fn missing_input_errors() {
        let cluster = ClusterConfig::single_node();
        let dfs = SimDfs::new(1, 1024);
        let err = run_job(
            &cluster,
            &JobConfig::default(),
            Arc::new(WordSum),
            &dfs,
            &[("nope", 0)],
        );
        assert!(err.is_err());
    }

    #[test]
    fn hash_grouping_matches_sort_grouping_output() {
        let mut cluster = ClusterConfig::local();
        cluster.spill_buffer_bytes = 64 << 10;
        let mut dfs = SimDfs::new(cluster.nodes, 4096);
        dfs.put("c", corpus(400));
        let sorted = run_job(
            &cluster,
            &JobConfig::default(),
            Arc::new(WordSum),
            &dfs,
            &[("c", 0)],
        )
        .unwrap();
        let cfg = JobConfig {
            grouping: Grouping::Hash,
            ..JobConfig::default()
        };
        let hashed = run_job(&cluster, &cfg, Arc::new(WordSum), &dfs, &[("c", 0)]).unwrap();
        // Same multiset of results (hash grouping does not sort output).
        assert_eq!(sorted.sorted_pairs(), hashed.sorted_pairs());
        // Hash grouping spends no time in the reduce-side merge sort...
        use crate::metrics::Op;
        let merge_sorted = sorted.profile.total_ops().get(Op::ReduceMerge);
        let merge_hashed = hashed.profile.total_ops().get(Op::ReduceMerge);
        // ... well, it still spends *some* time grouping (hash table
        // build), but cannot exceed the sort-merge path wildly; the real
        // assertion is output equality above and the dedicated ablation
        // bench measures the cost difference.
        assert!(merge_sorted > 0 && merge_hashed > 0);
    }

    #[test]
    fn compression_preserves_output_and_shrinks_shuffle() {
        let mut cluster = ClusterConfig::local();
        cluster.spill_buffer_bytes = 64 << 10;
        let mut dfs = SimDfs::new(cluster.nodes, 4096);
        dfs.put("c", corpus(400));
        let plain = run_job(
            &cluster,
            &JobConfig::default(),
            Arc::new(WordSum),
            &dfs,
            &[("c", 0)],
        )
        .unwrap();
        cluster.compress_map_output = true;
        let packed = run_job(
            &cluster,
            &JobConfig::default(),
            Arc::new(WordSum),
            &dfs,
            &[("c", 0)],
        )
        .unwrap();
        assert_eq!(plain.sorted_pairs(), packed.sorted_pairs());
        assert!(
            packed.profile.shuffled_bytes < plain.profile.shuffled_bytes,
            "compressed shuffle {} !< plain {}",
            packed.profile.shuffled_bytes,
            plain.profile.shuffled_bytes
        );
    }

    #[test]
    fn tracing_is_opt_in_and_consistent_with_the_profile() {
        let data = corpus(300);
        for fetchers in [1, 4] {
            let cluster = ClusterConfig::local().with_shuffle_fetchers(fetchers);
            let mut dfs = SimDfs::new(cluster.nodes, 2048);
            dfs.put("c", data.clone());
            let plain = run_job(
                &cluster,
                &JobConfig::default(),
                Arc::new(WordSum),
                &dfs,
                &[("c", 0)],
            )
            .unwrap();
            assert!(plain.trace.is_none());
            let traced = run_job(
                &cluster,
                &JobConfig::default().with_trace(),
                Arc::new(WordSum),
                &dfs,
                &[("c", 0)],
            )
            .unwrap();
            // Tracing changes nothing observable about the job itself.
            assert_eq!(plain.sorted_pairs(), traced.sorted_pairs());
            assert_eq!(plain.profile.signature(), traced.profile.signature());
            let trace = traced.trace.expect("trace requested");
            // Lanes tile their entries, slots never double-book, and the
            // op spans reproduce the profile's totals exactly.
            trace.check().unwrap();
            assert_eq!(trace.op_times(), traced.profile.total_ops());
            let json = trace.to_chrome_json();
            let summary = crate::trace::validate_chrome_trace(&json).unwrap();
            assert!(summary.complete_events > 0);
            assert!(summary.pids >= 1);
        }
    }

    #[test]
    fn streamed_trace_export_matches_batch_bytes() {
        // Same job, same faults and stragglers (flat markers, backups, and
        // multi-round tid layout all flow through the shared emitters):
        // the file `trace_stream` writes must equal `to_chrome_json()` of
        // the in-memory trace byte for byte.
        let cluster = ClusterConfig::local();
        let mut dfs = SimDfs::new(cluster.nodes, 2048);
        dfs.put("c", corpus(300));
        let plan = FaultPlan::new().map_fail_after(0, 3).slow_node(0, 4);
        let cfg = JobConfig::default()
            .with_fault_plan(plan)
            .with_speculation(SpeculationConfig::default())
            .with_trace();
        let batch = run_job(&cluster, &cfg, Arc::new(WordSum), &dfs, &[("c", 0)]).unwrap();
        let dir = std::env::temp_dir().join(format!("textmr-tsj-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        // Byte parity: feed the real trace's entries (flat markers,
        // backup lanes, flow tags, edges and all) through the streaming
        // writer and diff against the batch string. Two *runs* cannot be
        // diffed — virtual durations come from measured real work — so
        // the comparison pivots on one run's entries.
        let trace = batch.trace.as_ref().unwrap();
        let parity = dir.join("parity.json");
        let mut w = crate::trace::stream::TraceStreamWriter::create(
            parity.clone(),
            trace.nodes,
            trace.map_slots,
            trace.reduce_slots,
            trace.fetchers,
        )
        .unwrap();
        for e in &trace.entries {
            w.push_entry(e).unwrap();
        }
        w.finish(trace.wall, &trace.edges).unwrap();
        assert_eq!(
            std::fs::read_to_string(&parity).unwrap(),
            trace.to_chrome_json()
        );
        // End-to-end stream mode: no in-memory JobTrace, same outputs and
        // timing-free signature, and the file imports back into a trace
        // that passes the structural checks.
        let path = dir.join("streamed.json");
        let streamed = run_job(
            &cluster,
            &cfg.clone().with_trace_stream(path.clone()),
            Arc::new(WordSum),
            &dfs,
            &[("c", 0)],
        )
        .unwrap();
        assert!(streamed.trace.is_none(), "stream mode keeps no JobTrace");
        assert_eq!(batch.sorted_pairs(), streamed.sorted_pairs());
        assert_eq!(batch.profile.signature(), streamed.profile.signature());
        let file = std::fs::read_to_string(&path).unwrap();
        crate::trace::validate_chrome_trace(&file).unwrap();
        JobTrace::from_chrome_json(&file).unwrap().check().unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn tracing_covers_retries_stragglers_and_speculation() {
        let cluster = ClusterConfig::local();
        let mut dfs = SimDfs::new(cluster.nodes, 2048);
        dfs.put("c", corpus(300));
        let plan = FaultPlan::new().map_fail_after(0, 3).slow_node(0, 4);
        let cfg = JobConfig::default()
            .with_fault_plan(plan)
            .with_speculation(SpeculationConfig::default())
            .with_trace();
        let run = run_job(&cluster, &cfg, Arc::new(WordSum), &dfs, &[("c", 0)]).unwrap();
        let trace = run.trace.expect("trace requested");
        trace.check().unwrap();
        // Straggler scaling divides back out exactly, so op totals still
        // match even with a 4× node in the plan.
        assert_eq!(trace.op_times(), run.profile.total_ops());
        // The injected first-attempt failure leaves a flat marker.
        assert!(trace
            .entries
            .iter()
            .any(|e| matches!(e.detail, EntryDetail::Flat(AttemptKind::Failed))));
        crate::trace::validate_chrome_trace(&trace.to_chrome_json()).unwrap();
        // The ASCII renderer covers every lane without panicking.
        assert!(!trace.render_text(80).is_empty());
    }

    #[test]
    fn reduce_spans_start_after_map_phase() {
        let cluster = ClusterConfig::local();
        let mut dfs = SimDfs::new(cluster.nodes, 2048);
        dfs.put("c", corpus(100));
        let run = run_job(
            &cluster,
            &JobConfig::default(),
            Arc::new(WordSum),
            &dfs,
            &[("c", 0)],
        )
        .unwrap();
        for span in &run.profile.reduce_spans {
            assert!(span.start >= run.profile.map_phase_end);
        }
    }
}
