//! Offline shim for `criterion` covering the surface this workspace's
//! benches use: `criterion_group!`/`criterion_main!`, benchmark groups,
//! `Bencher::iter`, `BenchmarkId`, `Throughput`, `black_box`.
//!
//! Each benchmark runs a short calibration pass, then enough iterations to
//! fill a small time budget, and prints the median per-iteration wall time
//! (plus derived throughput when declared). There is no outlier analysis,
//! no HTML report, and no baseline comparison.

use std::fmt;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Per-iteration time budget for one benchmark (keeps full runs short).
const SAMPLE_BUDGET: Duration = Duration::from_millis(200);

/// Declared throughput of one iteration, used to derive rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier `"{name}/{parameter}"`.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Things accepted as a benchmark name (`&str` or [`BenchmarkId`]).
pub trait IntoBenchmarkId {
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Measure `routine`, collecting `sample_count` samples.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        // Calibrate: how many iterations fit the per-sample budget?
        let t0 = Instant::now();
        black_box(routine());
        let once = t0.elapsed().max(Duration::from_nanos(1));
        let per_sample = SAMPLE_BUDGET / (self.sample_count as u32);
        let iters = (per_sample.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;

        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / (iters as u32));
        }
        self.samples.sort();
    }

    fn median(&self) -> Duration {
        if self.samples.is_empty() {
            Duration::ZERO
        } else {
            self.samples[self.samples.len() / 2]
        }
    }
}

/// A named collection of related benchmarks. Holds an exclusive borrow of
/// the parent [`Criterion`] for its lifetime, matching upstream's API.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut b);
        self.report(&label, b.median());
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl IntoBenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let label = id.into_label();
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_size,
        };
        f(&mut b, input);
        self.report(&label, b.median());
        self
    }

    /// Finish the group (printing happens per-bench; this is a no-op kept
    /// for API compatibility).
    pub fn finish(&mut self) {}

    fn report(&self, label: &str, median: Duration) {
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) if median > Duration::ZERO => {
                format!("  {:>12.1} elem/s", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) if median > Duration::ZERO => {
                format!(
                    "  {:>12.1} MiB/s",
                    n as f64 / median.as_secs_f64() / (1 << 20) as f64
                )
            }
            _ => String::new(),
        };
        println!(
            "bench {:<40} median {:>12?}{}",
            format!("{}/{}", self.name, label),
            median,
            rate
        );
    }
}

/// Top-level benchmark driver (shim of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    sample_size: usize,
}

impl Criterion {
    /// Builder: default sample count for all groups.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Builder kept for CLI compatibility; arguments are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl fmt::Display) -> BenchmarkGroup<'_> {
        let name = name.to_string();
        let sample_size = if self.sample_size == 0 {
            10
        } else {
            self.sample_size
        };
        BenchmarkGroup {
            _parent: self,
            name,
            throughput: None,
            sample_size,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let label = id.into_label();
        self.benchmark_group(label.clone()).bench_function("run", f);
        self
    }
}

/// Define a group runner function from benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` from group runners.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trivial(c: &mut Criterion) {
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(1));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("param", 3), &3, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        g.finish();
    }

    criterion_group!(shim_group, trivial);

    #[test]
    fn group_runs_and_reports() {
        shim_group();
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("offer", 100).into_label(), "offer/100");
        assert_eq!(BenchmarkId::from_parameter("x").into_label(), "x");
    }
}
