//! Offline shim for `parking_lot`: a `Mutex` wrapping `std::sync::Mutex`
//! whose `lock()` never returns a poison error (parking_lot mutexes do not
//! poison). Covers exactly the surface this workspace uses.

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// Mutex with parking_lot's `lock()` signature (no `Result`).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Create a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, ignoring poisoning (parking_lot semantics).
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires exclusive borrow).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_roundtrip() {
        let m = Mutex::new(41);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn lock_survives_poisoning_panic() {
        let m = std::sync::Arc::new(Mutex::new(0));
        let m2 = std::sync::Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        // parking_lot semantics: lock still succeeds.
        *m.lock() += 1;
        assert_eq!(*m.lock(), 1);
    }
}
