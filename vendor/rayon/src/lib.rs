//! Offline shim for `rayon`: `into_par_iter()` degrades to the sequential
//! `std` iterator. All call sites in this workspace seed their work
//! per-index, so sequential and parallel execution produce identical
//! output; only data-generation wall time differs. Engine-side parallelism
//! does not go through rayon — the cluster driver uses its own scoped
//! worker pool (`textmr_engine::cluster`).

pub mod prelude {
    /// Shim of `rayon::iter::IntoParallelIterator`, blanket-implemented so
    /// `.into_par_iter()` yields the ordinary sequential iterator and the
    /// downstream `.map(...).collect()` chain type-checks unchanged.
    pub trait IntoParallelIterator: IntoIterator + Sized {
        fn into_par_iter(self) -> Self::IntoIter {
            self.into_iter()
        }
    }

    impl<T: IntoIterator + Sized> IntoParallelIterator for T {}
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn par_iter_preserves_order() {
        let v: Vec<usize> = (0..100usize).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..100).map(|i| i * 2).collect::<Vec<_>>());
    }
}
