//! Offline shim for `proptest` covering the surface this workspace uses:
//! the `proptest!` macro, `any::<T>()`, integer/float range strategies,
//! `Just`, weighted `prop_oneof!`, `collection::vec`, tuple strategies, a
//! regex-subset string strategy, `prop_map`, and the `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case prints its generated inputs and the
//!   case seed; minimize by hand or by rerunning with more cases.
//! * **No `proptest-regressions` replay.** The upstream seed format encodes
//!   upstream's RNG; pinned regressions should be committed as explicit
//!   `#[test]` functions instead.
//! * Case count scales with `PROPTEST_CASES` (multiplier-free override) and
//!   the base seed with `PROPTEST_RNG_SEED`, enabling longer searches.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    use crate::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// Strategy for a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert inside a property; panics with the formatted message on failure.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Inequality assert inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

/// Weighted (or unweighted) union of strategies producing the same value
/// type. Each arm is boxed, so arms may have different strategy types.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::OneOf::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Property-test harness: expands each `fn name(arg in strategy, ...)` into
/// a `#[test]`-attributed function that runs `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let __cases = $crate::test_runner::resolved_cases(__cfg.cases);
                let __base = $crate::test_runner::base_seed();
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(__base, __case);
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                    let __inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let __result = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(move || $body)
                    );
                    if let Err(panic) = __result {
                        eprintln!(
                            "proptest shim: case {}/{} failed (base seed {:#x}); inputs: {}",
                            __case + 1, __cases, __base, __inputs
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::ProptestConfig::default())]
            $($(#[$meta])* fn $name($($arg in $strat),+) $body)*
        }
    };
}
