//! Deterministic case scheduling for the `proptest!` shim.

/// Configuration accepted by `#![proptest_config(...)]`. Only `cases` has an
/// effect; the remaining fields exist so functional-record-update spellings
/// like `ProptestConfig { cases: 64, ..ProptestConfig::default() }` compile.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
    /// Accepted for compatibility; unused (the shim never shrinks).
    pub max_shrink_iters: u32,
    /// Accepted for compatibility; unused.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_shrink_iters: 0,
            max_global_rejects: 65536,
        }
    }
}

/// Effective case count: `PROPTEST_CASES` overrides the config when set.
pub fn resolved_cases(config_cases: u32) -> u32 {
    match std::env::var("PROPTEST_CASES") {
        Ok(v) => v.parse().unwrap_or(config_cases),
        Err(_) => config_cases,
    }
}

/// Base RNG seed: `PROPTEST_RNG_SEED` (decimal or 0x-hex) or a fixed
/// default, so failures reproduce across runs by default.
pub fn base_seed() -> u64 {
    match std::env::var("PROPTEST_RNG_SEED") {
        Ok(v) => {
            let v = v.trim();
            if let Some(hex) = v.strip_prefix("0x") {
                u64::from_str_radix(hex, 16).unwrap_or(0x7e57_5eed)
            } else {
                v.parse().unwrap_or(0x7e57_5eed)
            }
        }
        Err(_) => 0x7e57_5eed,
    }
}

/// SplitMix64 RNG used to drive strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// RNG for one case, decorrelated from neighbouring cases.
    pub fn for_case(base: u64, case: u32) -> Self {
        let mut rng = TestRng {
            state: base ^ (u64::from(case) + 1).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        };
        // Warm up so adjacent case seeds diverge immediately.
        rng.next_u64();
        rng
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, n)`; `n` must be non-zero.
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_case_rngs_are_deterministic_and_distinct() {
        let a1: Vec<u64> = {
            let mut r = TestRng::for_case(1, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let a2: Vec<u64> = {
            let mut r = TestRng::for_case(1, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a1, a2);
        let b: Vec<u64> = {
            let mut r = TestRng::for_case(1, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a1, b);
    }

    #[test]
    fn default_config_compiles_with_fru() {
        let c = ProptestConfig {
            cases: 12,
            ..ProptestConfig::default()
        };
        assert_eq!(c.cases, 12);
    }
}
