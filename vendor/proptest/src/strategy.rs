//! Value-generation strategies for the `proptest!` shim.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated value type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erase into a [`BoxedStrategy`] (used by `prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            generate: Rc::new(move |rng| self.generate(rng)),
        }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Type-erased strategy.
#[derive(Clone)]
pub struct BoxedStrategy<T> {
    generate: Rc<dyn Fn(&mut TestRng) -> T>,
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.generate)(rng)
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Weighted union built by `prop_oneof!`.
pub struct OneOf<T> {
    arms: Vec<(u32, BoxedStrategy<T>)>,
    total: u64,
}

impl<T> OneOf<T> {
    /// Build from `(weight, strategy)` arms; weights must sum to > 0.
    pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Self {
        let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof! needs at least one positive weight");
        OneOf { arms, total }
    }
}

impl<T> Strategy for OneOf<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < u64::from(*w) {
                return s.generate(rng);
            }
            pick -= u64::from(*w);
        }
        unreachable!("weights exhausted")
    }
}

/// Strategy for `Vec<S::Value>`; see [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) element: S,
    pub(crate) size: Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        assert!(self.size.start < self.size.end, "empty vec size range");
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

// ---------------------------------------------------------------------------
// Scalar strategies: any::<T>() and ranges.
// ---------------------------------------------------------------------------

/// Types with a default "arbitrary value" strategy.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

/// Strategy over all values of `T`, biased toward boundary values the way
/// upstream proptest's integer domains are.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                // Mix of edges, small values, and full-range uniforms:
                // edge-heavy streams find off-by-one and overflow bugs that
                // pure uniforms over wide types rarely hit.
                match rng.below(8) {
                    0 => 0 as $t,
                    1 => <$t>::MAX,
                    2 => <$t>::MIN,
                    3 | 4 => (rng.below(16)) as $t,
                    _ => rng.next_u64() as $t,
                }
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.below(2) == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        match rng.below(8) {
            0 => 0.0,
            1 => -1.0,
            2 => 1.0,
            _ => (rng.unit_f64() - 0.5) * 2e6,
        }
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        random_non_control_char(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// ---------------------------------------------------------------------------
// Tuple strategies.
// ---------------------------------------------------------------------------

macro_rules! tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

// ---------------------------------------------------------------------------
// Regex-subset string strategy for `&'static str` patterns.
// ---------------------------------------------------------------------------

/// One repeatable unit of a pattern.
enum Unit {
    /// `\PC` — any non-control character.
    NonControl,
    /// `[...]` — explicit set of chars (ranges expanded).
    Class(Vec<(char, char)>),
    /// A literal character.
    Literal(char),
}

struct PatternPiece {
    unit: Unit,
    min: usize,
    max: usize,
}

fn parse_pattern(pattern: &str) -> Vec<PatternPiece> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut i = 0;
    let mut pieces = Vec::new();
    while i < chars.len() {
        let unit = match chars[i] {
            '\\' => {
                // Only `\PC` (non-control) is supported; anything else is an
                // escaped literal.
                if chars.get(i + 1) == Some(&'P') && chars.get(i + 2) == Some(&'C') {
                    i += 3;
                    Unit::NonControl
                } else {
                    let c = *chars.get(i + 1).expect("dangling escape in pattern");
                    i += 2;
                    Unit::Literal(c)
                }
            }
            '[' => {
                let mut ranges = Vec::new();
                i += 1;
                while i < chars.len() && chars[i] != ']' {
                    let lo = chars[i];
                    if chars.get(i + 1) == Some(&'-') && chars.get(i + 2).is_some_and(|&c| c != ']')
                    {
                        ranges.push((lo, chars[i + 2]));
                        i += 3;
                    } else {
                        ranges.push((lo, lo));
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated char class in pattern");
                i += 1; // closing ']'
                Unit::Class(ranges)
            }
            c => {
                i += 1;
                Unit::Literal(c)
            }
        };
        // Optional {m,n} / {m} repetition.
        let (min, max) = if chars.get(i) == Some(&'{') {
            let close = chars[i..]
                .iter()
                .position(|&c| c == '}')
                .expect("unterminated {}")
                + i;
            let body: String = chars[i + 1..close].iter().collect();
            i = close + 1;
            match body.split_once(',') {
                Some((m, n)) => (
                    m.trim().parse().expect("bad repetition"),
                    n.trim().parse().expect("bad repetition"),
                ),
                None => {
                    let m: usize = body.trim().parse().expect("bad repetition");
                    (m, m)
                }
            }
        } else {
            (1, 1)
        };
        pieces.push(PatternPiece { unit, min, max });
    }
    pieces
}

/// Sample any Unicode scalar that is not a control character, weighted
/// toward ASCII but regularly producing multi-byte chars (the long tail is
/// where tokenizer bugs live).
fn random_non_control_char(rng: &mut TestRng) -> char {
    loop {
        let c = match rng.below(10) {
            0..=5 => char::from_u32(0x20 + rng.below(0x5f) as u32),
            6 | 7 => char::from_u32(0xA0 + rng.below(0x2f60) as u32),
            _ => char::from_u32(rng.below(0x11_0000) as u32),
        };
        if let Some(c) = c {
            if !c.is_control() {
                return c;
            }
        }
    }
}

impl Strategy for &'static str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        let pieces = parse_pattern(self);
        let mut out = String::new();
        for piece in &pieces {
            let n = piece.min + rng.below((piece.max - piece.min + 1) as u64) as usize;
            for _ in 0..n {
                match &piece.unit {
                    Unit::NonControl => out.push(random_non_control_char(rng)),
                    Unit::Literal(c) => out.push(*c),
                    Unit::Class(ranges) => {
                        let total: u64 = ranges
                            .iter()
                            .map(|(lo, hi)| (*hi as u64) - (*lo as u64) + 1)
                            .sum();
                        let mut pick = rng.below(total);
                        for (lo, hi) in ranges {
                            let span = (*hi as u64) - (*lo as u64) + 1;
                            if pick < span {
                                out.push(char::from_u32(*lo as u32 + pick as u32).unwrap());
                                break;
                            }
                            pick -= span;
                        }
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> TestRng {
        TestRng::for_case(0xABCD, 0)
    }

    #[test]
    fn char_class_pattern_respects_alphabet_and_length() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-d]{1,3}".generate(&mut r);
            assert!((1..=3).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| ('a'..='d').contains(&c)), "{s:?}");
        }
    }

    #[test]
    fn mixed_class_with_literals() {
        let mut r = rng();
        for _ in 0..200 {
            let s = "[a-zA-Z ,.]{0,60}".generate(&mut r);
            assert!(s.chars().count() <= 60);
            assert!(s
                .chars()
                .all(|c| c.is_ascii_alphabetic() || c == ' ' || c == ',' || c == '.'));
        }
    }

    #[test]
    fn non_control_pattern_generates_no_controls_and_some_non_ascii() {
        let mut r = rng();
        let mut saw_non_ascii = false;
        for _ in 0..300 {
            let s = "\\PC{0,80}".generate(&mut r);
            assert!(s.chars().all(|c| !c.is_control()), "{s:?}");
            saw_non_ascii |= !s.is_ascii();
        }
        assert!(saw_non_ascii, "long-tail chars never generated");
    }

    #[test]
    fn oneof_honours_weights_roughly() {
        let s = crate::prop_oneof![
            4 => Just("hot".to_string()),
            1 => "[a-d]{1,1}".prop_map(|s| s),
        ];
        let mut r = rng();
        let hot = (0..1000).filter(|_| s.generate(&mut r) == "hot").count();
        assert!((600..=1000).contains(&hot), "hot picked {hot}/1000");
    }

    #[test]
    fn vec_strategy_lengths_in_range() {
        let s = crate::collection::vec(any::<u8>(), 2..5);
        let mut r = rng();
        for _ in 0..100 {
            let v = s.generate(&mut r);
            assert!((2..5).contains(&v.len()));
        }
    }

    #[test]
    fn any_int_hits_edges() {
        let mut r = rng();
        let mut saw_zero = false;
        let mut saw_max = false;
        for _ in 0..200 {
            match u64::arbitrary(&mut r) {
                0 => saw_zero = true,
                u64::MAX => saw_max = true,
                _ => {}
            }
        }
        assert!(saw_zero && saw_max);
    }

    #[test]
    fn tuples_and_ranges_compose() {
        let s = (0u32..4, crate::collection::vec(any::<u8>(), 0..12));
        let mut r = rng();
        for _ in 0..100 {
            let (part, key) = s.generate(&mut r);
            assert!(part < 4);
            assert!(key.len() < 12);
        }
    }
}
