//! Offline, API-compatible shim for the parts of `rand` 0.8 this workspace
//! uses: `rngs::StdRng`, `SeedableRng::seed_from_u64`, and the `Rng`
//! extension methods `gen`, `gen_range`, `gen_ratio`.
//!
//! The generator is SplitMix64 — statistically solid for test-data
//! generation, deterministic, and trivially seedable. It is NOT the same
//! stream as upstream `StdRng` (ChaCha12), so datasets generated here differ
//! byte-for-byte from ones generated with the real crate; all consumers in
//! this workspace treat generated data as opaque, so only determinism
//! matters.

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (shim of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Construct from a `u64` seed.
    fn seed_from_u64(state: u64) -> Self;
}

/// Random number generator core + convenience methods (shim of `rand::Rng`).
pub trait Rng {
    /// Next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Sample a value of type `T` from its "standard" distribution
    /// (`f64` in `[0, 1)`, integers uniform over their full range).
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits64(self.next_u64())
    }

    /// Uniform sample from a half-open or inclusive range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// True with probability `num / den`.
    fn gen_ratio(&mut self, num: u32, den: u32) -> bool {
        assert!(den > 0 && num <= den, "gen_ratio({num}, {den})");
        (self.next_u64() % u64::from(den)) < u64::from(num)
    }
}

/// Types samplable by [`Rng::gen`].
pub trait Standard {
    fn from_bits64(bits: u64) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_bits64(bits: u64) -> f64 {
        // 53 high bits -> [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_bits64(bits: u64) -> u64 {
        bits
    }
}

impl Standard for u32 {
    #[inline]
    fn from_bits64(bits: u64) -> u32 {
        (bits >> 32) as u32
    }
}

impl Standard for bool {
    #[inline]
    fn from_bits64(bits: u64) -> bool {
        bits & 1 == 1
    }
}

/// Ranges samplable by [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty gen_range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let off = (rng.next_u64() as u128) % span;
                (self.start as i128 + off as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty gen_range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                let off = (rng.next_u64() as u128) % span;
                (lo as i128 + off as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    #[inline]
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty gen_range");
        let u: f64 = f64::from_bits64(rng.next_u64());
        self.start + u * (self.end - self.start)
    }
}

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic seedable RNG (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = r.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = r.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = r.gen_range(0.5f64..2.0);
            assert!((0.5..2.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_hits_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        let (mut lo_seen, mut hi_seen) = (false, false);
        for _ in 0..5000 {
            match r.gen_range(0u8..=3) {
                0 => lo_seen = true,
                3 => hi_seen = true,
                _ => {}
            }
        }
        assert!(lo_seen && hi_seen);
    }

    #[test]
    fn gen_ratio_degenerate_cases() {
        let mut r = StdRng::seed_from_u64(4);
        assert!(!r.gen_ratio(0, 5));
        assert!(r.gen_ratio(5, 5));
    }

    #[test]
    fn works_through_unsized_bound() {
        fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen::<f64>()
        }
        let mut r = StdRng::seed_from_u64(5);
        let _ = sample(&mut r);
    }
}
