//! Property-based tests: MapReduce-equivalence under arbitrary engine
//! configurations, Space-Saving guarantees, and agreement between the
//! engine's discrete virtual pipeline and the analytic model.

use proptest::prelude::*;
use std::sync::Arc;
use textmr_core::model::RateModel;
use textmr_core::space_saving::SpaceSaving;
use textmr_core::{optimized, FreqBufferConfig, OptimizationConfig, SpillMatcherConfig};
use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig};
use textmr_engine::codec::{decode_u64, encode_u64};
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::job::{Emit, Job, Record, ValueCursor, ValueSink};
use textmr_engine::reference::{flatten_sorted, reference_run};

/// A word-sum job over space-separated tokens (drives the engine without
/// the tokenizer's unicode handling, so inputs can be arbitrary ASCII).
struct TokenSum;
impl Job for TokenSum {
    fn name(&self) -> &str {
        "token-sum"
    }
    fn map(&self, r: &Record<'_>, e: &mut dyn Emit) {
        for w in r.value.split(|&b| b == b' ').filter(|w| !w.is_empty()) {
            e.emit(w, &encode_u64(1));
        }
    }
    fn has_combiner(&self) -> bool {
        true
    }
    fn combine(&self, _k: &[u8], values: &mut dyn ValueCursor, out: &mut dyn ValueSink) {
        let mut s = 0;
        while let Some(v) = values.next() {
            s += decode_u64(v).unwrap();
        }
        out.push(&encode_u64(s));
    }
    fn reduce(&self, k: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
        let mut s = 0;
        while let Some(v) = values.next() {
            s += decode_u64(v).unwrap();
        }
        out.emit(k, &encode_u64(s));
    }
}

/// Skewed random lines: tokens drawn from a small alphabet with heavy
/// repetition plus a rare tail.
fn lines_strategy() -> impl Strategy<Value = Vec<String>> {
    let token = prop_oneof![
        4 => Just("hot".to_string()),
        2 => Just("warm".to_string()),
        2 => "[a-d]{1,3}".prop_map(|s| s),
        1 => "[e-z]{1,6}".prop_map(|s| s),
    ];
    let line = proptest::collection::vec(token, 1..12).prop_map(|ws| ws.join(" "));
    proptest::collection::vec(line, 1..120)
}

fn build_dfs(lines: &[String], nodes: usize, block: usize) -> SimDfs {
    let mut dfs = SimDfs::new(nodes, block);
    let mut data = Vec::new();
    for l in lines {
        data.extend_from_slice(l.as_bytes());
        data.push(b'\n');
    }
    dfs.put("in", data);
    dfs
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// For ANY input, cluster shape, buffer size, spill fraction and
    /// optimization configuration, the engine's output equals the naive
    /// reference execution.
    #[test]
    fn engine_equals_reference_under_any_config(
        lines in lines_strategy(),
        nodes in 1usize..7,
        block in prop_oneof![Just(64usize), Just(256), Just(1024), Just(1 << 16)],
        buffer in prop_oneof![Just(1usize << 10), Just(8 << 10), Just(1 << 20)],
        reducers in 1usize..5,
        opt_kind in 0u8..4,
        fraction in 0.05f64..1.0,
        compress in any::<bool>(),
        hash_grouping in any::<bool>(),
    ) {
        let dfs = build_dfs(&lines, nodes, block);
        let mut cluster = ClusterConfig::local();
        cluster.nodes = nodes;
        cluster.spill_buffer_bytes = buffer;
        cluster.compress_map_output = compress;
        let freq = FreqBufferConfig { k: 50, sampling_fraction: Some(0.1), ..Default::default() };
        let opt = match opt_kind {
            0 => OptimizationConfig::baseline(),
            1 => OptimizationConfig::freq_only(freq),
            2 => OptimizationConfig::spill_only(SpillMatcherConfig::default()),
            _ => OptimizationConfig {
                frequency_buffering: Some(freq),
                spill_matcher: Some(SpillMatcherConfig::default()),
                share_frequent_keys: true,
            },
        };
        let mut cfg = optimized(JobConfig::default().with_reducers(reducers), opt);
        if opt_kind == 0 {
            cfg.spill_controller = textmr_engine::controller::fixed_spill_factory(fraction);
        }
        if hash_grouping {
            cfg.grouping = textmr_engine::task::reduce_task::Grouping::Hash;
        }
        let job: Arc<dyn Job> = Arc::new(TokenSum);
        let engine = run_job(&cluster, &cfg, job, &dfs, &[("in", 0)]).unwrap();
        let reference = reference_run(&TokenSum, &dfs, &[("in", 0)], reducers).unwrap();
        prop_assert_eq!(engine.sorted_pairs(), flatten_sorted(&reference));
    }

    /// Space-Saving guarantees hold on arbitrary streams:
    /// count ≥ true ≥ count − error for monitored keys, and the counter
    /// sum equals the stream length.
    #[test]
    fn space_saving_bounds(
        keys in proptest::collection::vec(0u8..24, 1..600),
        capacity in 1usize..20,
    ) {
        let mut ss = SpaceSaving::new(capacity);
        let mut truth = std::collections::HashMap::new();
        for k in &keys {
            ss.offer(&[*k]);
            *truth.entry(*k).or_insert(0u64) += 1;
        }
        let entries = ss.entries();
        let total: u64 = entries.iter().map(|(_, c, _)| c).sum();
        prop_assert_eq!(total, keys.len() as u64, "counter-sum invariant");
        for (key, count, err) in &entries {
            let t = truth[&key[0]];
            prop_assert!(*count >= t, "overestimate only");
            prop_assert!(count - err <= t, "error bound");
        }
        // Any key with frequency > N/capacity must be monitored.
        let n = keys.len() as u64;
        for (k, &t) in &truth {
            if t > n / capacity as u64 {
                prop_assert!(ss.get(&[*k]).is_some(), "heavy hitter {k} evicted (freq {t})");
            }
        }
    }

    /// The engine's discrete virtual pipeline agrees with the continuous
    /// analytic model on wait-freedom of the slower side (Eq. 1),
    /// modulo one record of discretization slack.
    #[test]
    fn pipeline_matches_model_waitfreedom(
        produce_ns in 1u64..400,
        consume_per_byte in 1u64..8,
        frac_pct in 10u32..96,
    ) {
        use textmr_engine::task::pipeline::{Admission, Pipeline};
        let capacity = 10_000usize;
        let record = 100usize;
        let x = frac_pct as f64 / 100.0;

        // Discrete pipeline.
        let mut p = Pipeline::new(capacity, x);
        for _ in 0..600 {
            if p.admit(record) == Admission::SpillThenAppend {
                let bytes = p.active_bytes();
                p.handover(bytes as u64 * consume_per_byte);
            }
            p.appended(record);
            p.produce(produce_ns);
            if p.should_spill() {
                let bytes = p.active_bytes();
                p.handover(bytes as u64 * consume_per_byte);
            }
        }

        // Continuous model with the same rates.
        let rate_p = record as f64 / produce_ns as f64;
        let rate_c = 1.0 / consume_per_byte as f64;
        let model = RateModel { p: rate_p, c: rate_c, capacity: capacity as f64 };
        let x_star = model.optimal_fraction();

        // Comfortably below the bound ⇒ the slower side must be (nearly)
        // wait-free in the discrete pipeline too. "Nearly": ramp-up plus
        // per-record slack.
        if x < x_star - 0.05 && (rate_p / rate_c).max(rate_c / rate_p) > 1.2 {
            let slower_wait = if rate_p < rate_c { p.producer_wait } else { p.consumer_wait };
            let total = p.produce_busy + p.producer_wait;
            prop_assert!(
                (slower_wait as f64) < 0.10 * total as f64 + 10_000.0,
                "slower side waited {slower_wait} of {total} at x={x} (x*={x_star})"
            );
        }
    }
}

/// Pinned regression (originally found by proptest, seed `ff93ba88…`):
/// FreqOpt over a tiny 1 KiB spill buffer, 1 KiB blocks, two
/// nodes and four reducers. The saved shrink predates the `compress` /
/// `hash_grouping` parameters, so this explicit case covers all four
/// combinations — and both sequential and pooled execution.
#[test]
fn equivalence_regression_freqopt_tiny_buffer() {
    let lines: Vec<String> = [
        "hot hot hot aba ca warm hot hot warm dc",
        "dcc hot hot hot qi hot warm warm b hot",
        "hot warm hot warm",
        "hi cc warm ba warm hot c nqgrr warm hot cd",
        "abc bac hot hot warm aa hot fmp iu hot hot",
        "wuffm hot hot n dc bb warm c hot c hot",
        "cdd dcd warm hot hot hot hot hot warm bdd",
        "dd hot hot warm warm b",
        "hot warm hot b warm bd hot warm hot",
        "warm hot bab bba adc hot hot hot hot hot",
        "bab cc warm hot ccc d",
        "warm hot hot klis hot warm hot warm warm",
        "hot hot pekkt warm dbd hot hot tksvng hot",
        "fnwilm warm",
        "cba hot c aa",
        "hxnog cdd a hot",
        "ba hot hot hot hot hot hot hot",
        "warm bbd uziu warm warm bd d hot",
        "hot warm dad hot warm hot warm",
        "hot hot hot hot warm dda hot",
        "hot xqg hot hot c jsnhu warm hot dd",
        "hot hot b hot hot xxvnl warm",
        "thwx warm a a",
        "hot warm mfgz hot",
        "hot pffl qvlkx warm warm",
        "hot warm aa cc hot b cd hot warm warm warm",
        "kztpnz warm ca adb",
        "warm a warm rgliui hot",
        "warm hot hot ab da hzmjnw",
        "xmqzfr ca hot warm hot y warm hot b",
        "mvvfvq hot uxku hot baa hot warm hot",
        "a b qer hot caa",
        "hot a warm gmru cbc dcc hot hot hot",
        "hot hot c a hot cd caa nfeli hot",
        "warm hot hot hot",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let (nodes, block, buffer, reducers) = (2usize, 1024usize, 1024usize, 4usize);
    let dfs = build_dfs(&lines, nodes, block);
    let reference = reference_run(&TokenSum, &dfs, &[("in", 0)], reducers).unwrap();
    let expected = flatten_sorted(&reference);
    for compress in [false, true] {
        for hash_grouping in [false, true] {
            for workers in [1, 4] {
                let mut cluster = ClusterConfig::local();
                cluster.nodes = nodes;
                cluster.spill_buffer_bytes = buffer;
                cluster.compress_map_output = compress;
                cluster.worker_threads = workers;
                let freq = FreqBufferConfig {
                    k: 50,
                    sampling_fraction: Some(0.1),
                    ..Default::default()
                };
                let mut cfg = optimized(
                    JobConfig::default().with_reducers(reducers),
                    OptimizationConfig::freq_only(freq),
                );
                if hash_grouping {
                    cfg.grouping = textmr_engine::task::reduce_task::Grouping::Hash;
                }
                let job: Arc<dyn Job> = Arc::new(TokenSum);
                let engine = run_job(&cluster, &cfg, job, &dfs, &[("in", 0)]).unwrap();
                assert_eq!(
                    engine.sorted_pairs(),
                    expected,
                    "compress={compress} hash_grouping={hash_grouping} workers={workers}"
                );
            }
        }
    }
}
