//! Multi-tenant determinism: interleaving jobs on the shared serve
//! cluster must be *invisible* in every job's data — outputs and
//! timing-free signatures identical to running the same plan alone — and
//! a single-tenant serve must replay the legacy engine schedule slot for
//! slot. Virtual *durations* are measured (they legitimately differ
//! between any two runs), so every comparison here is either against a
//! solo run of the same process-independent data, or within one process
//! against the serve call's own solo traces.

use std::sync::Arc;
use textmr_apps::{PrefixApply, PrefixLocal, PrefixScan, WordCount};
use textmr_data::text::CorpusConfig;
use textmr_engine::cluster::{ClusterConfig, JobConfig};
use textmr_engine::dag::run_dag;
use textmr_engine::fault::FaultPlan;
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::job::{JobDag, StageInput};
use textmr_engine::trace::race::check_races;
use textmr_engine::trace::JobTrace;
use textmr_serve::workload::{self, WorkloadConfig};
use textmr_serve::{serve, JobRequest, ServeCacheConfig, ServeConfig, TenantSpec};

fn small_workload_cfg() -> WorkloadConfig {
    WorkloadConfig {
        jobs: 8,
        tenants: 3,
        lines: 120,
        ..Default::default()
    }
}

/// Inject the same deterministic retry into a regenerated workload, so
/// the serve run and the solo reference both exercise a failed attempt.
fn inject_fault(wl: &mut workload::Workload) {
    wl.requests[0].plan.stages[0].cfg.fault_plan = FaultPlan::new().map_fail_at(0, 0, 5);
}

/// N tenants' jobs interleaved on the shared cluster produce exactly the
/// outputs and timing-free signatures of solo runs (cache off), and the
/// merged multi-job trace validates and race-checks clean.
#[test]
fn interleaved_tenants_match_their_solo_runs() {
    let cfg = small_workload_cfg();
    let cluster = ClusterConfig::local();
    let mut wl = workload::generate(cluster.nodes, &cfg);
    inject_fault(&mut wl);
    let run = serve(
        &cluster,
        &wl.tenants,
        wl.requests,
        &wl.dfs,
        &ServeConfig::default(),
    )
    .expect("serve failed");
    assert!(run.rejected.is_empty(), "unexpected rejections");
    assert_eq!(run.jobs.len(), cfg.jobs);

    run.trace.check().expect("merged trace invariants violated");
    let report = check_races(&run.trace);
    assert!(report.is_clean(), "{}", report.render());
    assert!(
        run.trace.entries.iter().all(|e| e.job > 0),
        "every merged entry must carry its job id"
    );

    // Fresh solo runs of byte-identical plans (regenerated workload).
    let mut reference = workload::generate(cluster.nodes, &cfg);
    inject_fault(&mut reference);
    for (job, req) in run.jobs.iter().zip(reference.requests) {
        let solo = run_dag(&cluster, &req.plan, &reference.dfs).expect("solo run failed");
        assert_eq!(
            job.outputs, solo.outputs,
            "job {} outputs drifted",
            job.name
        );
        assert_eq!(
            job.profile.signature(),
            solo.profile.signature(),
            "job {} signature drifted",
            job.name
        );
        assert!(job.start >= job.arrival, "job {} started early", job.name);
        assert!(job.finish >= job.start);
    }
    // The injected fault really produced a retry in the merged trace.
    assert!(
        run.trace
            .entries
            .iter()
            .any(|e| e.job == 1 && e.attempt > 0),
        "fault plan produced no retry attempt"
    );
}

fn wordcount_request(tenant: usize, arrival: u64, name: &str) -> JobRequest {
    JobRequest {
        tenant,
        arrival,
        name: name.to_string(),
        plan: JobDag::new().stage(
            Arc::new(WordCount),
            JobConfig::default().with_reducers(3),
            StageInput::dfs("corpus"),
        ),
        cache_prefix: None,
    }
}

fn corpus_dfs(nodes: usize) -> SimDfs {
    let mut dfs = SimDfs::new(nodes, 4 << 10);
    dfs.put(
        "corpus",
        CorpusConfig {
            lines: 200,
            vocab_size: 150,
            ..Default::default()
        }
        .generate_bytes(),
    );
    dfs
}

fn one_tenant() -> Vec<TenantSpec> {
    vec![TenantSpec {
        name: "solo".into(),
        weight: 1,
        max_jobs: 8,
    }]
}

/// The merged trace of a lone job must equal its solo trace entry for
/// entry (modulo the job id) and edge for edge: the multiplexer's
/// per-job floors degenerate to the engine's own free-time raises.
/// Pinned at `shuffle_fetchers = 1`, where the engine places reduces
/// with the same static recurrence the multiplexer replays.
fn assert_single_tenant_replay(trace: &JobTrace, solo: &JobTrace) {
    assert_eq!(trace.entries.len(), solo.entries.len());
    for (m, s) in trace.entries.iter().zip(&solo.entries) {
        assert_eq!(m.job, 1, "merged entry must be tagged job 1");
        let mut expect = s.clone();
        expect.job = 1;
        assert_eq!(*m, expect, "entry diverged from the legacy schedule");
    }
    let canon = |t: &JobTrace| {
        let mut es: Vec<String> = t.edges.iter().map(|e| format!("{e:?}")).collect();
        es.sort();
        es
    };
    assert_eq!(canon(trace), canon(solo), "edge sets diverged");
    assert_eq!(trace.wall, solo.wall);
}

#[test]
fn single_tenant_serve_replays_the_legacy_schedule() {
    let cluster = ClusterConfig::local().with_shuffle_fetchers(1);
    let dfs = corpus_dfs(cluster.nodes);
    let run = serve(
        &cluster,
        &one_tenant(),
        vec![wordcount_request(0, 0, "wc")],
        &dfs,
        &ServeConfig::default(),
    )
    .expect("serve failed");
    assert!(run.rejected.is_empty());
    assert_single_tenant_replay(&run.trace, &run.jobs[0].solo_trace);
}

/// Same replay property across a three-round DAG: the multiplexer's
/// round floors must coincide with the engine's round origins.
#[test]
fn single_tenant_multiround_serve_replays_the_legacy_schedule() {
    let cluster = ClusterConfig::local().with_shuffle_fetchers(1);
    let mut dfs = SimDfs::new(cluster.nodes, 256);
    let mut lines = String::new();
    for i in 0..48u64 {
        lines.push_str(&format!("{i} {}\n", (i * 13 + 5) % 97));
    }
    dfs.put("elems", lines.into_bytes());
    let cfg = JobConfig::default().with_reducers(3);
    let plan = JobDag::new()
        .stage(
            Arc::new(PrefixLocal { block_size: 8 }),
            cfg.clone(),
            StageInput::dfs("elems"),
        )
        .then(Arc::new(PrefixScan { num_blocks: 6 }), cfg.clone())
        .then(Arc::new(PrefixApply), cfg);
    let run = serve(
        &cluster,
        &one_tenant(),
        vec![JobRequest {
            tenant: 0,
            arrival: 0,
            name: "prefix".into(),
            plan,
            cache_prefix: None,
        }],
        &dfs,
        &ServeConfig::default(),
    )
    .expect("serve failed");
    assert!(run.rejected.is_empty());
    assert_single_tenant_replay(&run.trace, &run.jobs[0].solo_trace);
}

/// Serving the same Zipfian queue twice (fresh caches, regenerated
/// workloads) makes identical data-level decisions: per-job outputs,
/// signatures, and the per-job cache hit/miss tallies all agree, even
/// though measured virtual durations differ between the two calls.
#[test]
fn repeated_serves_agree_on_outputs_and_cache_decisions() {
    let cfg = WorkloadConfig {
        jobs: 10,
        tenants: 3,
        lines: 120,
        alpha: 1.4,
        ..Default::default()
    };
    let cluster = ClusterConfig::local();
    let mut runs = Vec::new();
    for _ in 0..2 {
        let wl = workload::generate(cluster.nodes, &cfg);
        let serve_cfg = ServeConfig {
            cache: Some(ServeCacheConfig {
                cache: Arc::new(textmr_serve::S3FifoCache::new(1 << 20)),
                lookup_cost_ns: 50_000,
            }),
        };
        let run =
            serve(&cluster, &wl.tenants, wl.requests, &wl.dfs, &serve_cfg).expect("serve failed");
        run.trace.check().expect("merged trace invariants violated");
        runs.push(run);
    }
    let (a, b) = (&runs[0], &runs[1]);
    assert_eq!(a.jobs.len(), b.jobs.len());
    let mut total_hits = 0;
    for (ja, jb) in a.jobs.iter().zip(&b.jobs) {
        assert_eq!(ja.outputs, jb.outputs, "job {} outputs drifted", ja.name);
        assert_eq!(ja.profile.signature(), jb.profile.signature());
        assert_eq!(
            (ja.cache_hits, ja.cache_misses),
            (jb.cache_hits, jb.cache_misses),
            "job {} cache decisions drifted",
            ja.name
        );
        total_hits += ja.cache_hits;
    }
    assert_eq!(
        a.profile.cache, b.profile.cache,
        "final cache stats drifted"
    );
    assert!(
        total_hits > 0,
        "Zipf-repeated classes should score map-cache hits"
    );
}
