//! Out-of-core determinism: the streamed read path (framed windows,
//! bounded map budget) must be observationally identical to the
//! materialized path. `StreamingConfig::materialize_reads` only toggles
//! *residency* — which bytes are resident when — never which bytes are
//! produced, so outputs, per-partition bytes, and the timing-free
//! profile signature must match at any worker count, any fetcher count,
//! and under any deterministic fault plan.
//!
//! Also covers the framed-run format itself through the public API:
//! index round-trip via [`scan_frames`], and the truncation / corruption
//! / bad-flags error paths that protect merge and shuffle from damaged
//! spill bytes.

use std::sync::Arc;
use textmr_apps::WordCount;
use textmr_data::text::CorpusConfig;
use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig, JobRun};
use textmr_engine::fault::FaultPlan;
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::io::frame::{
    decode_frame, decode_run, scan_frames, FrameEncoder, FrameError, FrameRunCursor,
};
use textmr_engine::io::StreamingConfig;

const BUDGET: usize = 96 << 10;

fn corpus_dfs() -> SimDfs {
    let mut dfs = SimDfs::new(6, 32 << 10);
    dfs.put(
        "corpus",
        CorpusConfig {
            lines: 3_000,
            vocab_size: 4_000,
            ..Default::default()
        }
        .generate_bytes(),
    );
    dfs
}

fn run_mode(
    streaming: StreamingConfig,
    workers: usize,
    fetchers: usize,
    cfg: &JobConfig,
    dfs: &SimDfs,
) -> JobRun {
    let mut cluster = ClusterConfig::local()
        .with_worker_threads(workers)
        .with_shuffle_fetchers(fetchers)
        .with_streaming(streaming)
        .with_map_budget(BUDGET);
    cluster.spill_buffer_bytes = 128 << 10;
    run_job(&cluster, cfg, Arc::new(WordCount), dfs, &[("corpus", 0)]).unwrap()
}

/// Assert two runs are observationally identical: byte-identical reduce
/// outputs and equal timing-free profile signatures.
fn assert_same(a: &JobRun, b: &JobRun, what: &str) {
    assert_eq!(a.outputs, b.outputs, "{what}: outputs differ");
    assert_eq!(a.sorted_pairs(), b.sorted_pairs(), "{what}: pairs differ");
    assert_eq!(
        a.profile.signature(),
        b.profile.signature(),
        "{what}: profile signature differs"
    );
}

#[test]
fn streamed_matches_materialized_across_workers_and_fetchers() {
    let dfs = corpus_dfs();
    let cfg = JobConfig::default().with_reducers(5);
    let base = run_mode(StreamingConfig::materialized(), 1, 1, &cfg, &dfs);
    for workers in [1, 2, 4] {
        for fetchers in [1, 4] {
            let streamed = run_mode(StreamingConfig::streamed(), workers, fetchers, &cfg, &dfs);
            assert_same(
                &base,
                &streamed,
                &format!("streamed w={workers} f={fetchers}"),
            );
            // Budget actually binds on the streamed side.
            for t in &streamed.profile.map_tasks {
                assert!(
                    t.peak_buffer_bytes as usize <= BUDGET,
                    "map task peak {} exceeds budget {BUDGET} at w={workers} f={fetchers}",
                    t.peak_buffer_bytes
                );
            }
            let materialized = run_mode(
                StreamingConfig::materialized(),
                workers,
                fetchers,
                &cfg,
                &dfs,
            );
            assert_same(
                &base,
                &materialized,
                &format!("materialized w={workers} f={fetchers}"),
            );
        }
    }
}

#[test]
fn streamed_matches_materialized_under_seeded_faults() {
    let dfs = corpus_dfs();
    // One map retry, one shuffle retry, one reduce retry, one slow node:
    // every recovery path crosses the framed intermediate format.
    let plan = FaultPlan::new()
        .map_fail_after(0, 40)
        .shuffle_fail(1, 0)
        .reduce_fail_after(2, 10)
        .slow_node(1, 3);
    let cfg = JobConfig::default().with_reducers(5).with_fault_plan(plan);
    let base = run_mode(StreamingConfig::materialized(), 1, 1, &cfg, &dfs);
    assert!(
        !base.profile.map_tasks.is_empty(),
        "fault run produced no map profile"
    );
    for workers in [1, 4] {
        for fetchers in [1, 4] {
            let streamed = run_mode(StreamingConfig::streamed(), workers, fetchers, &cfg, &dfs);
            assert_same(
                &base,
                &streamed,
                &format!("faulted streamed w={workers} f={fetchers}"),
            );
        }
    }
}

#[test]
fn framed_budgeted_run_matches_legacy_output() {
    // The framed out-of-core pipeline must compute the same job answer as
    // the legacy record-buffer path. Spill geometry differs (frames
    // compress), so only the reduce output is compared — not signatures.
    let dfs = corpus_dfs();
    let cfg = JobConfig::default().with_reducers(5);
    let legacy = {
        let mut cluster = ClusterConfig::local();
        cluster.spill_buffer_bytes = 128 << 10;
        run_job(&cluster, &cfg, Arc::new(WordCount), &dfs, &[("corpus", 0)]).unwrap()
    };
    let framed = run_mode(StreamingConfig::streamed(), 4, 4, &cfg, &dfs);
    assert_eq!(legacy.sorted_pairs(), framed.sorted_pairs());
}

type Pairs = Vec<(Vec<u8>, Vec<u8>)>;
type Metas = Vec<textmr_engine::io::frame::FrameMeta>;

fn sample_run(target: usize) -> (Pairs, Vec<u8>, Metas) {
    let pairs: Pairs = (0..400)
        .map(|i| {
            (
                format!("key{i:05}").into_bytes(),
                format!("value{}", i % 7).into_bytes(),
            )
        })
        .collect();
    let mut enc = FrameEncoder::new(target);
    for (k, v) in &pairs {
        enc.push_record(k, v);
    }
    let (stored, metas, records) = enc.finish();
    assert_eq!(records, pairs.len() as u64);
    (pairs, stored, metas)
}

#[test]
fn frame_index_round_trips_through_header_scan() {
    let (pairs, stored, metas) = sample_run(1 << 10);
    assert!(metas.len() > 2, "want several frames, got {}", metas.len());
    // Rebuilding the index from headers alone recovers the geometry
    // (record counts are index-only and come back as 0).
    let scanned = scan_frames(&stored).unwrap();
    assert_eq!(scanned.len(), metas.len());
    for (s, m) in scanned.iter().zip(&metas) {
        assert_eq!(s.offset, m.offset);
        assert_eq!(s.stored_len, m.stored_len);
        assert_eq!(s.raw_len, m.raw_len);
        assert_eq!(s.records, 0);
    }
    // The scanned index decodes the run identically to the original one,
    // frame by frame and as a whole.
    let whole = decode_run(&stored).unwrap();
    let mut via_scan = Vec::new();
    for m in &scanned {
        via_scan.extend(decode_frame(&stored, m).unwrap());
    }
    assert_eq!(via_scan, whole);
    // And a windowed cursor over the scanned index yields every record.
    let mut cursor = FrameRunCursor::from_mem(stored, scanned).unwrap();
    let mut got = Vec::new();
    while let Some((k, v)) = cursor.peek() {
        got.push((k.to_vec(), v.to_vec()));
        cursor.advance().unwrap();
    }
    assert_eq!(got, pairs);
}

#[test]
fn truncated_run_is_rejected_not_misread() {
    let (_, stored, metas) = sample_run(1 << 10);
    // Chop mid-way through the last frame's payload.
    let cut = stored.len() - (metas.last().unwrap().stored_len as usize / 2);
    let truncated = &stored[..cut];
    assert_eq!(scan_frames(truncated).unwrap_err(), FrameError::Truncated);
    assert_eq!(
        decode_frame(truncated, metas.last().unwrap()).unwrap_err(),
        FrameError::Truncated
    );
    assert_eq!(decode_run(truncated).unwrap_err(), FrameError::Truncated);
    // Chopping inside a *header* (first byte of the run + 2) must also be
    // a clean Truncated, not a panic or a garbage decode.
    assert_eq!(
        scan_frames(&stored[..2]).unwrap_err(),
        FrameError::Truncated
    );
}

#[test]
fn corrupt_payload_and_bad_flags_are_rejected() {
    let (_, stored, metas) = sample_run(1 << 10);
    // Flip one payload byte in the middle frame: the FNV-1a check (or the
    // decompressor) must catch it.
    let m = metas[metas.len() / 2];
    let mut damaged = stored.clone();
    damaged[m.offset as usize + m.stored_len as usize - 1] ^= 0x55;
    match decode_frame(&damaged, &m) {
        Err(FrameError::Corrupt) | Err(FrameError::Truncated) => {}
        other => panic!("damaged frame decoded: {other:?}"),
    }
    // An unknown flags byte is reported as such, with the offending value.
    let mut bad = stored.clone();
    bad[m.offset as usize] = 0x42;
    assert_eq!(
        decode_frame(&bad, &m).unwrap_err(),
        FrameError::BadFlags(0x42)
    );
    assert_eq!(scan_frames(&bad).unwrap_err(), FrameError::BadFlags(0x42));
}
