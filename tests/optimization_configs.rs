//! The paper's four experimental configurations — Baseline, FreqOpt,
//! SpillOpt, Combined — must all produce identical output, and each
//! optimization must show its signature behaviour on text workloads.

use std::sync::Arc;
use textmr_apps::*;
use textmr_core::{optimized, FreqBufferConfig, OptimizationConfig, SpillMatcherConfig};
use textmr_data::text::CorpusConfig;
use textmr_data::weblog::WeblogConfig;
use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig, JobRun};
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::job::Job;

fn cluster() -> ClusterConfig {
    let mut c = ClusterConfig::local();
    c.spill_buffer_bytes = 256 << 10;
    c
}

fn four_configs() -> Vec<(&'static str, OptimizationConfig)> {
    let freq = FreqBufferConfig {
        k: 500,
        sampling_fraction: Some(0.05),
        ..Default::default()
    };
    vec![
        ("Baseline", OptimizationConfig::baseline()),
        ("FreqOpt", OptimizationConfig::freq_only(freq.clone())),
        (
            "SpillOpt",
            OptimizationConfig::spill_only(SpillMatcherConfig::default()),
        ),
        (
            "Combined",
            OptimizationConfig {
                frequency_buffering: Some(freq),
                spill_matcher: Some(SpillMatcherConfig::default()),
                share_frequent_keys: true,
            },
        ),
    ]
}

fn run_all(job: Arc<dyn Job>, dfs: &SimDfs, inputs: &[(&str, u8)]) -> Vec<(&'static str, JobRun)> {
    four_configs()
        .into_iter()
        .map(|(name, opt)| {
            let cfg = optimized(JobConfig::default().with_reducers(3), opt);
            (
                name,
                run_job(&cluster(), &cfg, job.clone(), dfs, inputs).unwrap(),
            )
        })
        .collect()
}

/// Run every config `rounds` times, interleaved round-robin, and return all
/// runs per config. Timing-shape tests take the per-config *minimum* of
/// their metric across rounds: virtual durations derive from measured
/// wall-clock nanoseconds, so on shared hardware a load spike during one
/// config's single run can skew a cross-config ratio arbitrarily.
/// Interleaving makes a spike hit all configs alike, and the minimum
/// discards it (contention only ever adds time).
fn run_all_rounds(
    job: Arc<dyn Job>,
    dfs: &SimDfs,
    inputs: &[(&str, u8)],
    rounds: usize,
) -> Vec<(&'static str, Vec<JobRun>)> {
    let mut out: Vec<(&'static str, Vec<JobRun>)> = four_configs()
        .iter()
        .map(|(name, _)| (*name, Vec::with_capacity(rounds)))
        .collect();
    for _ in 0..rounds {
        for (slot, (_, opt)) in out.iter_mut().zip(four_configs()) {
            let cfg = optimized(JobConfig::default().with_reducers(3), opt);
            slot.1
                .push(run_job(&cluster(), &cfg, job.clone(), dfs, inputs).unwrap());
        }
    }
    out
}

/// Minimum of `metric` over a config's runs — the least-contended sample.
fn min_metric(runs: &[JobRun], metric: impl Fn(&JobRun) -> u64) -> u64 {
    runs.iter().map(metric).min().expect("at least one round")
}

fn corpus_dfs(lines: usize) -> SimDfs {
    let mut dfs = SimDfs::new(6, 64 << 10);
    dfs.put(
        "corpus",
        CorpusConfig {
            lines,
            vocab_size: 3_000,
            ..Default::default()
        }
        .generate_bytes(),
    );
    dfs
}

#[test]
fn all_configs_agree_on_wordcount() {
    let dfs = corpus_dfs(3000);
    let runs = run_all(Arc::new(WordCount), &dfs, &[("corpus", 0)]);
    let baseline = runs[0].1.sorted_pairs();
    for (name, run) in &runs[1..] {
        assert_eq!(run.sorted_pairs(), baseline, "{name} changed the output");
    }
}

#[test]
fn all_configs_agree_on_inverted_index() {
    let dfs = corpus_dfs(1500);
    let runs = run_all(Arc::new(InvertedIndex), &dfs, &[("corpus", 0)]);
    let baseline = runs[0].1.sorted_pairs();
    for (name, run) in &runs[1..] {
        assert_eq!(run.sorted_pairs(), baseline, "{name} changed the output");
    }
}

#[test]
fn all_configs_agree_on_join() {
    let mut dfs = SimDfs::new(6, 64 << 10);
    let weblog = WeblogConfig {
        num_urls: 400,
        num_visits: 2_500,
        ..Default::default()
    };
    dfs.put("visits", weblog.visits_bytes());
    dfs.put("rankings", weblog.rankings_bytes());
    let inputs = [("visits", SOURCE_VISITS), ("rankings", SOURCE_RANKINGS)];
    let runs = run_all(Arc::new(AccessLogJoin), &dfs, &inputs);
    let baseline = runs[0].1.sorted_pairs();
    for (name, run) in &runs[1..] {
        assert_eq!(run.sorted_pairs(), baseline, "{name} changed the output");
    }
}

#[test]
fn freq_buffering_absorbs_on_text() {
    let dfs = corpus_dfs(4000);
    let runs = run_all(Arc::new(WordCount), &dfs, &[("corpus", 0)]);
    let absorbed = |run: &JobRun| -> u64 {
        run.profile
            .map_tasks
            .iter()
            .map(|t| t.freq_absorbed_records)
            .sum()
    };
    assert_eq!(absorbed(&runs[0].1), 0, "baseline must not absorb");
    assert_eq!(absorbed(&runs[2].1), 0, "spill-only must not absorb");
    let freq_absorbed = absorbed(&runs[1].1);
    let emitted: u64 = runs[1]
        .1
        .profile
        .map_tasks
        .iter()
        .map(|t| t.emitted_records)
        .sum();
    // Zipf(1) text: the frequent set should absorb a large share.
    assert!(
        freq_absorbed as f64 > 0.3 * emitted as f64,
        "absorbed {freq_absorbed} of {emitted}"
    );
}

#[test]
fn freq_buffering_shrinks_spilled_records() {
    let dfs = corpus_dfs(4000);
    let runs = run_all(Arc::new(WordCount), &dfs, &[("corpus", 0)]);
    let spilled_records = |run: &JobRun| -> usize {
        run.profile
            .map_tasks
            .iter()
            .flat_map(|t| t.spills.iter())
            .map(|s| s.records)
            .sum()
    };
    let base = spilled_records(&runs[0].1);
    let freq = spilled_records(&runs[1].1);
    assert!(
        (freq as f64) < 0.8 * base as f64,
        "frequency-buffering should shrink the spill stream: base {base}, freq {freq}"
    );
}

// The following three tests assert the *direction* of the paper's
// performance effects with generous noise margins: virtual durations here
// are single-digit milliseconds measured on shared hardware in (possibly)
// debug builds, where constant overheads and scheduling jitter distort
// ratios. Each config runs `TIMING_ROUNDS` times interleaved and the
// per-config minimum is compared (see `run_all_rounds`). The precise
// magnitudes — "who wins, by how much" — are the bench harness's job
// (release mode, larger inputs; see EXPERIMENTS.md).

/// Rounds per config for timing-shape assertions.
const TIMING_ROUNDS: usize = 3;

/// Noise multiplier for timing-shape assertions.
fn slack() -> f64 {
    if cfg!(debug_assertions) {
        1.5
    } else {
        1.15
    }
}

#[test]
fn spill_matcher_does_not_inflate_slower_thread_wait() {
    let dfs = corpus_dfs(6000);
    let runs = run_all_rounds(Arc::new(WordCount), &dfs, &[("corpus", 0)], TIMING_ROUNDS);
    // For each task, the slower side's wait under the matcher should sum
    // to less than (noise-adjusted) the fixed baseline fraction's.
    let slower_wait = |run: &JobRun| -> u64 {
        run.profile
            .map_tasks
            .iter()
            .map(|t| {
                if t.produce_busy >= t.consume_busy {
                    // Producer is the slower (busier) side.
                    t.producer_wait
                } else {
                    t.consumer_wait
                }
            })
            .sum()
    };
    let base = min_metric(&runs[0].1, slower_wait);
    let matched = min_metric(&runs[2].1, slower_wait);
    assert!(
        (matched as f64) < (base as f64) * slack() + 2e6,
        "spill-matcher grossly inflated the slower thread's wait: base {base}, matched {matched}"
    );
}

#[test]
fn combined_does_not_regress_text_virtual_time() {
    let dfs = corpus_dfs(6000);
    let runs = run_all_rounds(Arc::new(WordCount), &dfs, &[("corpus", 0)], TIMING_ROUNDS);
    let base = min_metric(&runs[0].1, |r| r.profile.wall) as f64;
    let combined = min_metric(&runs[3].1, |r| r.profile.wall) as f64;
    assert!(
        combined < base * slack(),
        "combined optimizations grossly regressed text: base {base} vs combined {combined}"
    );
}

#[test]
fn relational_job_not_catastrophically_hurt() {
    // The paper's claim is "improve or do not substantially change".
    let mut dfs = SimDfs::new(6, 64 << 10);
    let weblog = WeblogConfig {
        num_urls: 600,
        num_visits: 4_000,
        ..Default::default()
    };
    dfs.put("visits", weblog.visits_bytes());
    let runs = run_all_rounds(
        Arc::new(AccessLogSum),
        &dfs,
        &[("visits", SOURCE_VISITS)],
        TIMING_ROUNDS,
    );
    let base = min_metric(&runs[0].1, |r| r.profile.wall) as f64;
    let combined = min_metric(&runs[3].1, |r| r.profile.wall) as f64;
    assert!(
        combined < base * slack() + 2e6,
        "combined should not blow up relational jobs: {combined} vs {base}"
    );
}
