//! Equivalence suite for the unified event-loop scheduler
//! ([`textmr_engine::event`]): the refactor must be invisible wherever the
//! legacy behaviour was correct, and visibly different only where the
//! co-located-reducer ingress bug was fixed.
//!
//! 1. Reservation mode (`place_map` / `place_reduce`) reproduces the
//!    pre-refactor greedy recurrence bit-for-bit, against an independent
//!    inline oracle, for any durations × factors × cluster shape.
//! 2. The dynamic reduce phase at one fetcher with no network contention
//!    lands every attempt at exactly the static reservation's `(start,
//!    end)` — the event loop is a refactor, not a reschedule.
//! 3. A single-fetcher shuffle is the serial sum of its flows' isolated
//!    costs, with no straggler tail.
//! 4. Co-located reducers fair-share their node's ingress NIC (the bug
//!    fix); non-co-located layouts keep their isolated transfer times.
//! 5. Every shipped fault-free 1-fetcher figure in `results/` replays
//!    through the unified scheduler to the identical `(slot, start, end)`
//!    schedule — the published figures are pinned.
//! 6. Full jobs: for any survivable generated fault plan, the dynamic
//!    event loop (fetchers > 1) and the legacy path (fetchers = 1) produce
//!    byte-identical output pairs and timing-free signatures across worker
//!    pools.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use textmr_apps::WordCount;
use textmr_data::text::CorpusConfig;
use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig, JobRun};
use textmr_engine::event::{
    simulate_attempt_flows, ClusterShape, Flow, Placement, ReduceAttempt, Scheduler,
};
use textmr_engine::fault::{ChaosShape, FaultPlan};
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::trace::{JobTrace, TaskKind, TraceEntry};

// ---------------------------------------------------------------------------
// 1. Reservation mode vs the legacy recurrence, written independently
// ---------------------------------------------------------------------------

/// The legacy tie-break: lowest-indexed slot among the earliest-free.
fn oracle_argmin(free: &[u64]) -> usize {
    let mut best = 0;
    for (i, &f) in free.iter().enumerate() {
        if f < free[best] {
            best = i;
        }
    }
    best
}

/// One placement step of the pre-refactor recurrence, advancing `free`.
fn oracle_place(free: &mut [u64], prev_end: u64, scaled_dur: u64) -> Placement {
    let slot = oracle_argmin(free);
    let start = free[slot].max(prev_end);
    let end = start + scaled_dur;
    free[slot] = end;
    Placement { slot, start, end }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// `place_map` / `place_reduce` equal the inline oracle for every
    /// attempt of every task: same slot, same start, same end.
    #[test]
    fn reservation_mode_matches_the_legacy_recurrence(
        factors in proptest::collection::vec(1u64..5, 1..5),
        map_slots in 1usize..4,
        reduce_slots in 1usize..4,
        tasks in proptest::collection::vec(proptest::collection::vec(1u64..50_000, 1..4), 1..12),
    ) {
        let nodes = factors.len();
        let shape = ClusterShape { nodes, map_slots, reduce_slots, fetchers: 1 };
        let mut sched = Scheduler::new(shape, factors.clone());

        let mut free = vec![vec![0u64; map_slots]; nodes];
        let mut map_end = 0u64;
        for (task, durs) in tasks.iter().enumerate() {
            let node = task % nodes;
            let got = sched.place_map(task, node, durs);
            let mut prev_end = 0u64;
            for (attempt, &dur) in durs.iter().enumerate() {
                let want = oracle_place(&mut free[node], prev_end, dur * factors[node]);
                prop_assert_eq!(got[attempt], want, "map task {} attempt {}", task, attempt);
                prev_end = want.end;
                map_end = map_end.max(want.end);
            }
        }

        sched.begin_reduce_phase(map_end);
        let mut rfree = vec![vec![map_end; reduce_slots]; nodes];
        for (task, durs) in tasks.iter().enumerate() {
            let node = (task + 1) % nodes;
            let got = sched.place_reduce(task, node, durs);
            let mut prev_end = 0u64;
            for (attempt, &dur) in durs.iter().enumerate() {
                let want = oracle_place(&mut rfree[node], prev_end, dur * factors[node]);
                prop_assert_eq!(got[attempt], want, "reduce task {} attempt {}", task, attempt);
                prev_end = want.end;
            }
        }
    }
}

// ---------------------------------------------------------------------------
// 2. Dynamic event loop vs static reservation (no network contention)
// ---------------------------------------------------------------------------

/// Attempts whose cost never touches a NIC: dead blocks and local-only
/// shuffles. With nothing shared, the dynamic loop must be a pure refactor
/// of the reservation arithmetic.
fn uncontended_attempt() -> impl Strategy<Value = ReduceAttempt> {
    prop_oneof![
        (1u64..20_000).prop_map(|dur| ReduceAttempt::Block { dur }),
        (
            proptest::collection::vec((1u64..5_000, 0u64..2_000), 0..4),
            1u64..5_000,
        )
            .prop_map(|(fl, post)| ReduceAttempt::Work {
                flows: fl
                    .into_iter()
                    .map(|(io, dec)| Flow {
                        io_ns: io,
                        backoff_ns: 0,
                        remote: false,
                        latency_ns: 0,
                        rate_ns: 0,
                        post_ns: dec,
                    })
                    .collect(),
                post_ns: post,
            }),
    ]
}

/// The static duration the legacy path would charge for an attempt.
fn isolated_dur(attempt: &ReduceAttempt) -> u64 {
    match attempt {
        ReduceAttempt::Block { dur } => *dur,
        ReduceAttempt::Work { flows, post_ns } => flows
            .iter()
            .map(Flow::isolated_ns)
            .sum::<u64>()
            .saturating_add(*post_ns),
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// With one attempt per task and no shared ingress, every dynamic
    /// outcome's `(start, end)` equals the static reservation's. (Slot
    /// labels may swap when two slots free at the same instant; the
    /// timing is what the figures pin.)
    #[test]
    fn dynamic_phase_matches_static_reservation_without_contention(
        factors in proptest::collection::vec(1u64..4, 1..4),
        reduce_slots in 1usize..3,
        attempts in proptest::collection::vec(uncontended_attempt(), 1..10),
        phase_start in 0u64..100_000,
    ) {
        let nodes = factors.len();
        let shape = ClusterShape { nodes, map_slots: 1, reduce_slots, fetchers: 1 };

        let mut dynamic = Scheduler::new(shape, factors.clone());
        dynamic.begin_reduce_phase(phase_start);
        let layout: Vec<(usize, Vec<ReduceAttempt>)> = attempts
            .iter()
            .enumerate()
            .map(|(t, a)| (t % nodes, vec![a.clone()]))
            .collect();
        let outcomes = dynamic.run_reduce_phase(layout);

        let mut fixed = Scheduler::new(shape, factors.clone());
        fixed.begin_reduce_phase(phase_start);
        for (task, attempt) in attempts.iter().enumerate() {
            let want = fixed.place_reduce(task, task % nodes, &[isolated_dur(attempt)]);
            prop_assert_eq!(
                (outcomes[task][0].start, outcomes[task][0].end),
                (want[0].start, want[0].end),
                "task {} diverged from the reservation schedule", task
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 3. Single-fetcher shuffles serialize exactly
// ---------------------------------------------------------------------------

fn any_flow() -> impl Strategy<Value = Flow> {
    (
        (0u64..5_000, 0u64..2_000),
        (any::<bool>(), 0u64..1_000),
        (0u64..10_000, 0u64..3_000),
    )
        .prop_map(
            |((io_ns, backoff_ns), (remote, latency_ns), (rate_ns, post_ns))| Flow {
                io_ns,
                backoff_ns,
                remote,
                latency_ns,
                rate_ns,
                post_ns,
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// One fetcher, one reducer: no sharing, no tail — the shuffle is the
    /// serial sum of isolated flow costs, completed in submission order.
    #[test]
    fn single_fetcher_shuffle_is_the_serial_sum_of_isolated_flows(
        flows in proptest::collection::vec(any_flow(), 0..12),
    ) {
        let shuffle = simulate_attempt_flows(&flows, 1);
        let serial: u64 = flows.iter().map(Flow::isolated_ns).sum();
        prop_assert_eq!(shuffle.virtual_ns, serial);
        prop_assert_eq!(shuffle.wait_ns, 0);
        let order: Vec<usize> = shuffle.flows.iter().map(|f| f.flow).collect();
        prop_assert_eq!(order, (0..flows.len()).collect::<Vec<_>>());
    }
}

// ---------------------------------------------------------------------------
// 4. The co-located-reducer ingress fix
// ---------------------------------------------------------------------------

/// Two reducers pulling one remote flow each: on separate nodes each
/// transfer runs at full rate; co-located on one node they fair-share its
/// ingress, so both transfers take exactly twice as long. This is the bug
/// the legacy per-attempt NIC model missed (each attempt modelled the NIC
/// as private, so co-location was free).
#[test]
fn co_located_reducers_fair_share_node_ingress() {
    let flow = Flow {
        io_ns: 0,
        backoff_ns: 0,
        remote: true,
        latency_ns: 1_000,
        rate_ns: 1_000_000,
        post_ns: 0,
    };
    let run = |homes: [usize; 2]| {
        let shape = ClusterShape {
            nodes: 2,
            map_slots: 1,
            reduce_slots: 2,
            fetchers: 2,
        };
        let mut sched = Scheduler::new(shape, vec![1, 1]);
        sched.begin_reduce_phase(0);
        sched.run_reduce_phase(
            homes
                .iter()
                .map(|&n| {
                    (
                        n,
                        vec![ReduceAttempt::Work {
                            flows: vec![flow],
                            post_ns: 0,
                        }],
                    )
                })
                .collect(),
        )
    };

    // Separate nodes: latency then a full-rate transfer.
    let separate = run([0, 1]);
    for outcome in &separate {
        assert_eq!((outcome[0].start, outcome[0].end), (0, 1_001_000));
    }
    // Co-located: the two concurrent transfers halve the shared rate.
    let together = run([0, 0]);
    for outcome in &together {
        assert_eq!((outcome[0].start, outcome[0].end), (0, 2_001_000));
    }
}

// ---------------------------------------------------------------------------
// 5. Shipped figures replay bit-for-bit
// ---------------------------------------------------------------------------

/// Replay one shipped trace's schedule through a fresh [`Scheduler`]: feed
/// back the unscaled attempt durations and demand the identical `(slot,
/// start, end)` for every entry. Trace durations are measured wall time —
/// machine-dependent — so this, not byte equality of regenerated files, is
/// what "bit-for-bit" means for the published figures.
fn replay_trace(name: &str, trace: &JobTrace) {
    let mut factors: Vec<Option<u64>> = vec![None; trace.nodes];
    for e in &trace.entries {
        let f = e.factor.max(1);
        match factors[e.node] {
            None => factors[e.node] = Some(f),
            Some(seen) => assert_eq!(seen, f, "{name}: node {} straggler factor flaps", e.node),
        }
    }
    let factors: Vec<u64> = factors.into_iter().map(|f| f.unwrap_or(1)).collect();

    let mut maps: BTreeMap<usize, Vec<&TraceEntry>> = BTreeMap::new();
    let mut reduces: BTreeMap<usize, Vec<&TraceEntry>> = BTreeMap::new();
    for e in &trace.entries {
        match e.kind {
            TaskKind::Map => maps.entry(e.task).or_default().push(e),
            TaskKind::Reduce => reduces.entry(e.task).or_default().push(e),
        }
    }
    for chain in maps.values_mut().chain(reduces.values_mut()) {
        chain.sort_by_key(|e| e.attempt);
    }

    let unscaled = |e: &TraceEntry, node: usize| -> u64 {
        let scaled = e.end - e.start;
        assert_eq!(
            scaled % factors[node],
            0,
            "{name}: entry duration not a multiple of the node factor"
        );
        scaled / factors[node]
    };

    let shape = ClusterShape {
        nodes: trace.nodes,
        map_slots: trace.map_slots,
        reduce_slots: trace.reduce_slots,
        fetchers: 1,
    };
    let mut sched = Scheduler::new(shape, factors.clone());

    let mut map_end = 0u64;
    for (task, chain) in &maps {
        let node = chain[0].node;
        for e in chain {
            assert_eq!(e.node, node, "{name}: map task {task} hops nodes");
        }
        let durs: Vec<u64> = chain.iter().map(|e| unscaled(e, node)).collect();
        let got = sched.place_map(*task, node, &durs);
        for (p, e) in got.iter().zip(chain) {
            assert_eq!(
                (p.slot, p.start, p.end),
                (e.slot, e.start, e.end),
                "{name}: map task {task} attempt {} replayed differently",
                e.attempt
            );
        }
        map_end = map_end.max(chain.last().expect("non-empty chain").end);
    }

    sched.begin_reduce_phase(map_end);
    for (task, chain) in &reduces {
        let node = chain[0].node;
        for e in chain {
            assert_eq!(e.node, node, "{name}: reduce task {task} hops nodes");
        }
        let durs: Vec<u64> = chain.iter().map(|e| unscaled(e, node)).collect();
        let got = sched.place_reduce(*task, node, &durs);
        for (p, e) in got.iter().zip(chain) {
            assert_eq!(
                (p.slot, p.start, p.end),
                (e.slot, e.start, e.end),
                "{name}: reduce task {task} attempt {} replayed differently",
                e.attempt
            );
        }
    }
}

/// Every shipped fault-free 1-fetcher figure replays exactly. Backup
/// attempts are excluded because their detection times are a driver input
/// the trace does not record; multi-fetcher `_f4` traces are dynamic-loop
/// schedules with their own invariants (tests 2–4); multi-round DAG
/// figures reuse task ids across rounds and are replayed by the
/// round-aware discipline in `tests/dag_determinism.rs` instead.
#[test]
fn shipped_single_fetcher_traces_replay_exactly() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let mut replayed = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("results/ directory") {
        let path = entry.expect("read results entry").path();
        let name = path
            .file_name()
            .expect("file name")
            .to_string_lossy()
            .into_owned();
        if !name.starts_with("trace_") || !name.ends_with(".json") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read trace json");
        let trace = JobTrace::from_chrome_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        if trace.fetchers != 1 || trace.entries.iter().any(|e| e.backup || e.round > 0) {
            continue;
        }
        replay_trace(&name, &trace);
        replayed.push(name);
    }
    assert!(
        replayed.len() >= 4,
        "expected the four shipped fault-free figures, replayed only {replayed:?}"
    );
}

// ---------------------------------------------------------------------------
// 6. Full jobs: unified loop vs legacy path under generated fault plans
// ---------------------------------------------------------------------------

fn corpus_dfs() -> SimDfs {
    let mut dfs = SimDfs::new(6, 8 << 10);
    dfs.put(
        "corpus",
        CorpusConfig {
            lines: 600,
            vocab_size: 300,
            ..Default::default()
        }
        .generate_bytes(),
    );
    dfs
}

fn cluster(root: &Path, workers: usize, fetchers: usize) -> ClusterConfig {
    let mut c = ClusterConfig::local()
        .with_worker_threads(workers)
        .with_shuffle_fetchers(fetchers);
    c.spill_buffer_bytes = 64 << 10;
    c.temp_dir = Some(root.to_path_buf());
    c
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("textmr-eventeq-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run_with_plan(tag: &str, plan: &FaultPlan, workers: usize, fetchers: usize) -> JobRun {
    let root = temp_root(tag);
    let dfs = corpus_dfs();
    let run = run_job(
        &cluster(&root, workers, fetchers),
        &JobConfig::default().with_fault_plan(plan.clone()),
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(&root);
    run
}

/// The chaos shape matching this file's corpus/cluster geometry, derived
/// once from a fault-free run.
fn chaos_shape() -> &'static ChaosShape {
    static SHAPE: OnceLock<ChaosShape> = OnceLock::new();
    SHAPE.get_or_init(|| {
        let run = run_with_plan("shape", &FaultPlan::new(), 1, 1);
        ChaosShape {
            map_tasks: run.profile.map_tasks.len(),
            reducers: 4,
            nodes: 6,
            max_attempts: 4,
            ..ChaosShape::default()
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    /// For any survivable seeded fault plan, runs through the dynamic
    /// event loop (fetchers > 1) and through the legacy 1-fetcher path
    /// produce byte-identical sorted output pairs and identical
    /// timing-free signatures, at every worker count.
    #[test]
    fn unified_loop_matches_the_legacy_schedule_for_any_survivable_plan(seed in any::<u64>()) {
        let plan = FaultPlan::generate(seed, chaos_shape());
        let legacy = run_with_plan(&format!("legacy-{seed:016x}"), &plan, 1, 1);
        let pairs = legacy.sorted_pairs();
        let signature = legacy.profile.signature();
        for (workers, fetchers) in [(2usize, 2usize), (1, 4), (4, 1)] {
            let run = run_with_plan(
                &format!("ev-{seed:016x}-w{workers}f{fetchers}"),
                &plan,
                workers,
                fetchers,
            );
            prop_assert_eq!(&run.sorted_pairs(), &pairs,
                "outputs diverged: seed={} workers={} fetchers={}", seed, workers, fetchers);
            prop_assert_eq!(&run.profile.signature(), &signature,
                "signature diverged: seed={} workers={} fetchers={}", seed, workers, fetchers);
        }
    }
}
