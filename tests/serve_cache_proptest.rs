//! Property tests for the S3-FIFO map-output cache: for *any* seeded
//! op sequence the byte budget is never exceeded after any operation,
//! the ghost queue stays within its key capacity, reference counters
//! saturate at [`FREQ_CAP`], and — because hits never reorder queues —
//! replaying the same sequence on a fresh cache reproduces the exact
//! hit/miss decision string and final counters.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Arc;
use textmr_engine::cache::{CachedMapOutput, CachedPartition, MapOutputCache};
use textmr_serve::cache::{S3FifoCache, FREQ_CAP};

fn payload(n: usize) -> Arc<CachedMapOutput> {
    Arc::new(CachedMapOutput {
        partitions: vec![CachedPartition {
            part: 0,
            bytes: vec![0x5au8; n],
            records: 1,
        }],
        compressed: false,
        framed: false,
        input_records: 1,
        emitted_records: 1,
        freq_absorbed_records: 0,
        output_bytes: n as u64,
    })
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Get(u8),
    /// Key and payload size in bytes.
    Put(u8, u16),
}

/// The op sequence is itself a pure function of the seed, so a failing
/// case is reproducible from the printed inputs alone.
fn ops_for(seed: u64) -> Vec<Op> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..300)
        .map(|_| {
            let key = rng.gen_range(0..24u8);
            if rng.gen::<f64>() < 0.5 {
                Op::Get(key)
            } else {
                Op::Put(key, rng.gen_range(0..300u16))
            }
        })
        .collect()
}

/// Drive `ops`, asserting the structural invariants after every single
/// operation; returns the hit/miss decision string for replay checks.
fn drive(cache: &S3FifoCache, ops: &[Op]) -> Vec<bool> {
    let mut decisions = Vec::new();
    for op in ops {
        let touched = match *op {
            Op::Get(k) => {
                let key = format!("k{k}");
                decisions.push(cache.get(&key).is_some());
                key
            }
            Op::Put(k, n) => {
                let key = format!("k{k}");
                cache.put(&key, payload(n as usize));
                key
            }
        };
        let s = cache.stats();
        assert!(
            s.resident_bytes <= cache.budget_bytes(),
            "budget exceeded after {op:?}: {} > {}",
            s.resident_bytes,
            cache.budget_bytes()
        );
        assert!(
            s.ghost_entries <= cache.ghost_capacity() as u64,
            "ghost overflow after {op:?}"
        );
        if let Some(f) = cache.freq_of(&touched) {
            assert!(f <= FREQ_CAP, "freq {f} over cap after {op:?}");
        }
    }
    decisions
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Invariants hold after every op, for any seed, across budget and
    /// ghost-capacity corners (including a zero-capacity ghost queue).
    #[test]
    fn budget_ghost_and_freq_invariants_hold(seed in any::<u64>()) {
        let budget = 128 + seed % 512;
        let ghost_cap = ((seed >> 16) % 16) as usize;
        let cache = S3FifoCache::with_ghost_capacity(budget, ghost_cap);
        drive(&cache, &ops_for(seed));
    }

    /// Two fresh caches fed the identical sequence make identical
    /// decisions and end in identical states: eviction depends only on
    /// the insertion order, never on lookup timing.
    #[test]
    fn hit_miss_sequence_replays_identically(seed in any::<u64>()) {
        let budget = 128 + seed % 512;
        let ghost_cap = ((seed >> 16) % 16) as usize;
        let ops = ops_for(seed);
        let a = S3FifoCache::with_ghost_capacity(budget, ghost_cap);
        let b = S3FifoCache::with_ghost_capacity(budget, ghost_cap);
        let da = drive(&a, &ops);
        let db = drive(&b, &ops);
        prop_assert_eq!(da, db);
        prop_assert_eq!(a.stats(), b.stats());
    }
}
