//! Failure injection: map-task attempts die mid-input (and reduce-task
//! attempts mid-group) and are retried; output must be unaffected under
//! every optimization configuration, and exhausted retries must abort the
//! job — sequentially and on the worker pool, where a retry must never
//! reuse a dead attempt's spill directory and an abort must cancel
//! in-flight tasks instead of hanging the pool.

use std::sync::Arc;
use textmr_apps::WordCount;
use textmr_core::{optimized, FreqBufferConfig, OptimizationConfig, SpillMatcherConfig};
use textmr_data::text::CorpusConfig;
use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig};
use textmr_engine::fault::FaultPlan;
use textmr_engine::io::dfs::SimDfs;

fn corpus_dfs() -> SimDfs {
    let mut dfs = SimDfs::new(6, 32 << 10);
    dfs.put(
        "corpus",
        CorpusConfig {
            lines: 2_000,
            vocab_size: 2_000,
            ..Default::default()
        }
        .generate_bytes(),
    );
    dfs
}

fn cluster() -> ClusterConfig {
    let mut c = ClusterConfig::local();
    c.spill_buffer_bytes = 128 << 10;
    c
}

#[test]
fn retried_tasks_do_not_change_output() {
    let dfs = corpus_dfs();
    let clean = run_job(
        &cluster(),
        &JobConfig::default().with_reducers(3),
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();

    let mut cfg = JobConfig::default().with_reducers(3);
    // Fail several tasks at assorted points, including after 1 record.
    cfg.fault_plan.insert(0, 1);
    cfg.fault_plan.insert(1, 50);
    cfg.fault_plan.insert(2, 7);
    let faulty = run_job(
        &cluster(),
        &cfg,
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    assert_eq!(clean.sorted_pairs(), faulty.sorted_pairs());
}

#[test]
fn retries_work_under_every_optimization_config() {
    let dfs = corpus_dfs();
    let clean = run_job(
        &cluster(),
        &JobConfig::default().with_reducers(3),
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    let freq = FreqBufferConfig {
        k: 200,
        sampling_fraction: Some(0.1),
        ..Default::default()
    };
    let configs = [
        OptimizationConfig::freq_only(freq.clone()),
        OptimizationConfig::spill_only(SpillMatcherConfig::default()),
        OptimizationConfig {
            frequency_buffering: Some(freq),
            spill_matcher: Some(SpillMatcherConfig::default()),
            share_frequent_keys: true,
        },
    ];
    for opt in configs {
        let mut cfg = optimized(JobConfig::default().with_reducers(3), opt);
        cfg.fault_plan.insert(0, 25);
        cfg.fault_plan.insert(3, 2);
        let faulty = run_job(
            &cluster(),
            &cfg,
            Arc::new(WordCount),
            &dfs,
            &[("corpus", 0)],
        )
        .unwrap();
        assert_eq!(clean.sorted_pairs(), faulty.sorted_pairs());
    }
}

#[test]
fn failed_attempt_occupies_slot_time() {
    let dfs = corpus_dfs();
    let mut cfg = JobConfig::default().with_reducers(3);
    cfg.fault_plan.insert(0, 100);
    let run = run_job(
        &cluster(),
        &cfg,
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    // Task 0's scheduled span covers at least its successful attempt.
    let span = &run.profile.map_spans[0];
    assert!(span.end - span.start >= run.profile.map_tasks[0].virtual_duration);
    // And the failed attempt pushed its start later than zero... only if it
    // ran on the same slot first; at minimum the start is not before 0.
    assert!(
        span.start > 0,
        "retry should be scheduled after the failed attempt"
    );
}

#[test]
fn injected_fault_on_every_first_attempt_still_completes() {
    let dfs = corpus_dfs();
    let mut cfg = JobConfig::default().with_reducers(2);
    for t in 0..64 {
        cfg.fault_plan.insert(t, 3);
    }
    let run = run_job(
        &cluster(),
        &cfg,
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    assert!(!run.sorted_pairs().is_empty());
}

#[test]
fn max_attempts_zero_tolerance_aborts() {
    let dfs = corpus_dfs();
    let mut cfg = JobConfig::default().with_reducers(2);
    cfg.fault_plan.insert(0, 5);
    cfg.max_attempts = 1; // the single allowed attempt is the failing one
    let err = run_job(
        &cluster(),
        &cfg,
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    );
    assert!(err.is_err(), "exhausted attempts must abort the job");
}

#[test]
fn retries_on_the_worker_pool_match_sequential_output() {
    let dfs = corpus_dfs();
    let mut cfg = JobConfig::default().with_reducers(3);
    // Enough faults that retries and healthy tasks overlap on the pool.
    for t in 0..8 {
        cfg.fault_plan.insert(t, 1 + (t as u64 * 7) % 40);
    }
    let seq = run_job(
        &cluster(),
        &cfg,
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    let par = run_job(
        &cluster().with_worker_threads(4),
        &cfg,
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    assert_eq!(seq.sorted_pairs(), par.sorted_pairs());
    assert_eq!(seq.profile.signature(), par.profile.signature());
}

#[test]
fn exhausted_retries_abort_promptly_on_the_worker_pool() {
    let dfs = corpus_dfs();
    let mut cfg = JobConfig::default().with_reducers(2);
    cfg.max_attempts = 1;
    cfg.fault_plan.insert(3, 1); // dooms the job while other tasks are in flight
    let start = std::time::Instant::now();
    let err = run_job(
        &cluster().with_worker_threads(4),
        &cfg,
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    );
    let elapsed = start.elapsed();
    let err = err.expect_err("exhausted attempts must abort the job");
    assert!(
        err.to_string().contains("map task 3 failed 1 attempts"),
        "got: {err}"
    );
    // The abort cancels in-flight and queued tasks rather than running the
    // whole job to completion; generous bound to stay robust under CI load.
    assert!(
        elapsed < std::time::Duration::from_secs(30),
        "abort took {elapsed:?}"
    );
}

// ---- reduce-side mirror of the map matrix ----------------------------------

#[test]
fn retried_reduce_tasks_do_not_change_output_or_signature() {
    let dfs = corpus_dfs();
    let clean = run_job(
        &cluster(),
        &JobConfig::default().with_reducers(3),
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();

    let plan = FaultPlan::new()
        .reduce_fail_after(0, 1) // dies on its very first key group
        .reduce_fail_at(1, 0, 40)
        .reduce_fail_at(1, 1, 7) // two dead attempts, succeeds on the third
        .reduce_fail_after(2, 15);
    let faulty = run_job(
        &cluster(),
        &JobConfig::default().with_reducers(3).with_fault_plan(plan),
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    assert_eq!(clean.sorted_pairs(), faulty.sorted_pairs());
    // Only the final (successful) attempt contributes to the profile, so
    // the timing-free signature is untouched by the dead attempts.
    assert_eq!(clean.profile.signature(), faulty.profile.signature());
}

#[test]
fn reduce_retries_work_under_every_optimization_config() {
    let dfs = corpus_dfs();
    let clean = run_job(
        &cluster(),
        &JobConfig::default().with_reducers(3),
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    let freq = FreqBufferConfig {
        k: 200,
        sampling_fraction: Some(0.1),
        ..Default::default()
    };
    let configs = [
        OptimizationConfig::freq_only(freq.clone()),
        OptimizationConfig::spill_only(SpillMatcherConfig::default()),
        OptimizationConfig {
            frequency_buffering: Some(freq),
            spill_matcher: Some(SpillMatcherConfig::default()),
            share_frequent_keys: true,
        },
    ];
    let plan = FaultPlan::new()
        .reduce_fail_after(0, 12)
        .reduce_fail_at(2, 0, 3)
        .reduce_fail_at(2, 1, 30);
    for opt in configs {
        for workers in [1, 4] {
            let cfg = optimized(JobConfig::default().with_reducers(3), opt.clone())
                .with_fault_plan(plan.clone());
            let faulty = run_job(
                &cluster().with_worker_threads(workers),
                &cfg,
                Arc::new(WordCount),
                &dfs,
                &[("corpus", 0)],
            )
            .unwrap();
            assert_eq!(
                clean.sorted_pairs(),
                faulty.sorted_pairs(),
                "workers={workers}"
            );
        }
    }
}

#[test]
fn failed_reduce_attempt_occupies_slot_time() {
    let dfs = corpus_dfs();
    let cfg = JobConfig::default()
        .with_reducers(3)
        .with_fault_plan(FaultPlan::new().reduce_fail_after(0, 20));
    let run = run_job(
        &cluster(),
        &cfg,
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    // Partition 0's span covers both the dead attempt and the successful
    // retry, so it must exceed the successful attempt's own duration and
    // start strictly after the map phase let it begin.
    let span = &run.profile.reduce_spans[0];
    assert!(span.end - span.start >= run.profile.reduce_tasks[0].virtual_duration);
    assert!(
        span.start > run.profile.map_phase_end,
        "retry should be scheduled after the failed attempt"
    );
}

#[test]
fn exhausted_reduce_retries_abort_with_a_named_error() {
    let dfs = corpus_dfs();
    // Every allowed attempt of partition 1 dies.
    let plan = FaultPlan::new()
        .reduce_fail_at(1, 0, 5)
        .reduce_fail_at(1, 1, 5);
    let cfg = JobConfig {
        max_attempts: 2,
        ..JobConfig::default().with_reducers(3).with_fault_plan(plan)
    };
    for workers in [1, 4] {
        let err = run_job(
            &cluster().with_worker_threads(workers),
            &cfg,
            Arc::new(WordCount),
            &dfs,
            &[("corpus", 0)],
        )
        .expect_err("exhausted reduce attempts must abort the job");
        assert!(
            err.to_string().contains("reduce task 1 failed 2 attempts"),
            "workers={workers}, got: {err}"
        );
    }
}

#[test]
fn mixed_map_and_reduce_faults_recover_together() {
    let dfs = corpus_dfs();
    let clean = run_job(
        &cluster(),
        &JobConfig::default().with_reducers(3),
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    let plan = FaultPlan::new()
        .map_fail_after(0, 9)
        .map_fail_at(2, 1, 4) // first retry dies too
        .map_fail_at(2, 0, 31)
        .spill_fail(1, 0, 0) // first spill write of task 1, attempt 0
        .shuffle_fail(0, 0) // first fetch of map 0's output, per reducer
        .shuffle_fail(3, 0)
        .shuffle_fail(3, 1)
        .reduce_fail_after(2, 11);
    for workers in [1, 4] {
        let faulty = run_job(
            &cluster().with_worker_threads(workers),
            &JobConfig::default()
                .with_reducers(3)
                .with_fault_plan(plan.clone()),
            Arc::new(WordCount),
            &dfs,
            &[("corpus", 0)],
        )
        .unwrap();
        assert_eq!(
            clean.sorted_pairs(),
            faulty.sorted_pairs(),
            "workers={workers}"
        );
        assert_eq!(clean.profile.signature(), faulty.profile.signature());
        // The injected shuffle faults actually fired and were retried.
        assert!(faulty.profile.shuffle_stats().retries > 0);
    }
}
