//! Failure injection: map-task attempts die mid-input and are retried;
//! output must be unaffected under every optimization configuration, and
//! exhausted retries must abort the job.

use std::sync::Arc;
use textmr_apps::WordCount;
use textmr_core::{optimized, FreqBufferConfig, OptimizationConfig, SpillMatcherConfig};
use textmr_data::text::CorpusConfig;
use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig};
use textmr_engine::io::dfs::SimDfs;

fn corpus_dfs() -> SimDfs {
    let mut dfs = SimDfs::new(6, 32 << 10);
    dfs.put(
        "corpus",
        CorpusConfig { lines: 2_000, vocab_size: 2_000, ..Default::default() }.generate_bytes(),
    );
    dfs
}

fn cluster() -> ClusterConfig {
    let mut c = ClusterConfig::local();
    c.spill_buffer_bytes = 128 << 10;
    c
}

#[test]
fn retried_tasks_do_not_change_output() {
    let dfs = corpus_dfs();
    let clean = run_job(
        &cluster(),
        &JobConfig::default().with_reducers(3),
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();

    let mut cfg = JobConfig::default().with_reducers(3);
    // Fail several tasks at assorted points, including after 1 record.
    cfg.fault_plan.insert(0, 1);
    cfg.fault_plan.insert(1, 50);
    cfg.fault_plan.insert(2, 7);
    let faulty = run_job(&cluster(), &cfg, Arc::new(WordCount), &dfs, &[("corpus", 0)]).unwrap();
    assert_eq!(clean.sorted_pairs(), faulty.sorted_pairs());
}

#[test]
fn retries_work_under_every_optimization_config() {
    let dfs = corpus_dfs();
    let clean = run_job(
        &cluster(),
        &JobConfig::default().with_reducers(3),
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    let freq = FreqBufferConfig { k: 200, sampling_fraction: Some(0.1), ..Default::default() };
    let configs = [
        OptimizationConfig::freq_only(freq.clone()),
        OptimizationConfig::spill_only(SpillMatcherConfig::default()),
        OptimizationConfig {
            frequency_buffering: Some(freq),
            spill_matcher: Some(SpillMatcherConfig::default()),
            share_frequent_keys: true,
        },
    ];
    for opt in configs {
        let mut cfg = optimized(JobConfig::default().with_reducers(3), opt);
        cfg.fault_plan.insert(0, 25);
        cfg.fault_plan.insert(3, 2);
        let faulty =
            run_job(&cluster(), &cfg, Arc::new(WordCount), &dfs, &[("corpus", 0)]).unwrap();
        assert_eq!(clean.sorted_pairs(), faulty.sorted_pairs());
    }
}

#[test]
fn failed_attempt_occupies_slot_time() {
    let dfs = corpus_dfs();
    let mut cfg = JobConfig::default().with_reducers(3);
    cfg.fault_plan.insert(0, 100);
    let run = run_job(&cluster(), &cfg, Arc::new(WordCount), &dfs, &[("corpus", 0)]).unwrap();
    // Task 0's scheduled span covers at least its successful attempt.
    let span = &run.profile.map_spans[0];
    assert!(span.end - span.start >= run.profile.map_tasks[0].virtual_duration);
    // And the failed attempt pushed its start later than zero... only if it
    // ran on the same slot first; at minimum the start is not before 0.
    assert!(span.start > 0, "retry should be scheduled after the failed attempt");
}

#[test]
fn injected_fault_on_every_first_attempt_still_completes() {
    let dfs = corpus_dfs();
    let mut cfg = JobConfig::default().with_reducers(2);
    for t in 0..64 {
        cfg.fault_plan.insert(t, 3);
    }
    let run = run_job(&cluster(), &cfg, Arc::new(WordCount), &dfs, &[("corpus", 0)]).unwrap();
    assert!(!run.sorted_pairs().is_empty());
}

#[test]
fn max_attempts_zero_tolerance_aborts() {
    let dfs = corpus_dfs();
    let mut cfg = JobConfig::default().with_reducers(2);
    cfg.fault_plan.insert(0, 5);
    cfg.max_attempts = 1; // the single allowed attempt is the failing one
    let err = run_job(&cluster(), &cfg, Arc::new(WordCount), &dfs, &[("corpus", 0)]);
    assert!(err.is_err(), "exhausted attempts must abort the job");
}
