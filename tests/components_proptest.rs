//! Component-level property tests: serialization, compression, sorting,
//! merging and tokenization hold their invariants on arbitrary inputs.

use proptest::prelude::*;
use textmr_engine::codec;
use textmr_engine::io::compress;
use textmr_engine::job::{Emit, Job, Record, ValueCursor};
use textmr_engine::task::merge::{count_records, merge_grouped};
use textmr_engine::task::segment::Segment;
use textmr_engine::task::spill::sort_indices;

struct Bytewise;
impl Job for Bytewise {
    fn name(&self) -> &str {
        "bytewise"
    }
    fn map(&self, _r: &Record<'_>, _e: &mut dyn Emit) {}
    fn reduce(&self, _k: &[u8], _v: &mut dyn ValueCursor, _o: &mut dyn Emit) {}
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    #[test]
    fn varint_roundtrips(v in any::<u64>()) {
        let mut buf = Vec::new();
        codec::write_varint(&mut buf, v);
        prop_assert_eq!(buf.len(), codec::varint_len(v));
        let mut pos = 0;
        prop_assert_eq!(codec::read_varint(&buf, &mut pos), Some(v));
        prop_assert_eq!(pos, buf.len());
    }

    #[test]
    fn records_roundtrip(pairs in proptest::collection::vec(
        (proptest::collection::vec(any::<u8>(), 0..64),
         proptest::collection::vec(any::<u8>(), 0..64)), 0..20)) {
        let mut buf = Vec::new();
        for (k, v) in &pairs {
            codec::write_record(&mut buf, k, v);
        }
        let mut pos = 0;
        for (k, v) in &pairs {
            let (rk, rv) = codec::read_record(&buf, &mut pos).expect("record present");
            prop_assert_eq!(rk, k.as_slice());
            prop_assert_eq!(rv, v.as_slice());
        }
        prop_assert_eq!(codec::read_record(&buf, &mut pos), None);
    }

    #[test]
    fn record_reader_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let mut pos = 0;
        while codec::read_record(&data, &mut pos).is_some() {}
        // Also varints directly.
        let mut pos = 0;
        let _ = codec::read_varint(&data, &mut pos);
    }

    #[test]
    fn scalar_codecs_preserve_order(a in any::<u64>(), b in any::<u64>(),
                                    x in any::<i64>(), y in any::<i64>()) {
        prop_assert_eq!(codec::encode_u64(a).cmp(&codec::encode_u64(b)), a.cmp(&b));
        prop_assert_eq!(codec::encode_i64(x).cmp(&codec::encode_i64(y)), x.cmp(&y));
    }

    #[test]
    fn compression_roundtrips(data in proptest::collection::vec(any::<u8>(), 0..4096)) {
        let c = compress::compress(&data);
        prop_assert_eq!(compress::decompress(&c), Some(data));
    }

    #[test]
    fn compression_roundtrips_repetitive(
        unit in proptest::collection::vec(any::<u8>(), 1..32),
        reps in 1usize..200,
    ) {
        let mut data = Vec::with_capacity(unit.len() * reps);
        for _ in 0..reps {
            data.extend_from_slice(&unit);
        }
        let c = compress::compress(&data);
        prop_assert_eq!(compress::decompress(&c), Some(data));
    }

    #[test]
    fn decompress_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..512)) {
        let _ = compress::decompress(&data);
    }

    #[test]
    fn sort_indices_orders_by_partition_then_key(
        recs in proptest::collection::vec(
            (0u32..4, proptest::collection::vec(any::<u8>(), 0..12)), 0..80)
    ) {
        let mut seg = Segment::new();
        for (part, key) in &recs {
            seg.push(*part as usize, key, b"v");
        }
        let idx = sort_indices(&seg, &Bytewise);
        prop_assert_eq!(idx.len(), recs.len());
        for w in idx.windows(2) {
            let (a, b) = (w[0] as usize, w[1] as usize);
            let ka = (seg.part(a), seg.key(a));
            let kb = (seg.part(b), seg.key(b));
            prop_assert!(ka <= kb, "out of order: {:?} then {:?}", ka, kb);
        }
    }

    #[test]
    fn merge_matches_naive_reference(
        runs_data in proptest::collection::vec(
            proptest::collection::vec(
                (proptest::collection::vec(any::<u8>(), 0..6),
                 proptest::collection::vec(any::<u8>(), 0..6)), 0..20),
            0..5)
    ) {
        // Sort each run's pairs by key (merge precondition), build framed
        // runs, merge, and compare against flatten-sort-group.
        let mut runs: Vec<Vec<u8>> = Vec::new();
        let mut all: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for mut pairs in runs_data {
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            let mut buf = Vec::new();
            for (k, v) in &pairs {
                codec::write_record(&mut buf, k, v);
                all.push((k.clone(), v.clone()));
            }
            runs.push(buf);
        }
        let mut merged: Vec<(Vec<u8>, usize)> = Vec::new();
        let mut merged_records = 0usize;
        merge_grouped(&runs, &|a, b| a.cmp(b), |k, vs| {
            merged.push((k.to_vec(), vs.len()));
            merged_records += vs.len();
        });
        // Group keys are strictly increasing.
        for w in merged.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        // Record count preserved; group sizes match the naive count.
        prop_assert_eq!(merged_records, all.len());
        let mut naive: std::collections::BTreeMap<Vec<u8>, usize> = Default::default();
        for (k, _) in &all {
            *naive.entry(k.clone()).or_default() += 1;
        }
        prop_assert_eq!(merged.len(), naive.len());
        for (k, n) in &merged {
            prop_assert_eq!(naive[k], *n);
        }
    }

    #[test]
    fn count_records_is_consistent_with_writes(
        pairs in proptest::collection::vec(
            (proptest::collection::vec(any::<u8>(), 0..8),
             proptest::collection::vec(any::<u8>(), 0..8)), 0..30)
    ) {
        let mut buf = Vec::new();
        for (k, v) in &pairs {
            codec::write_record(&mut buf, k, v);
        }
        prop_assert_eq!(count_records(&buf), pairs.len());
    }

    #[test]
    fn tokenizer_words_are_normalized(line in "\\PC{0,80}") {
        for w in textmr_nlp::tokenizer::words(&line) {
            prop_assert!(!w.is_empty());
            // Lowercased (modulo chars with no lowercase mapping, e.g.
            // U+2110 SCRIPT CAPITAL I); internal ' and - allowed; never
            // whitespace.
            prop_assert!(
                w.chars().all(|c| !c.is_whitespace()
                    && (!c.is_uppercase() || c.to_lowercase().eq(std::iter::once(c)))),
                "bad token {w:?} from {line:?}"
            );
            prop_assert!(
                w.chars().all(|c| c.is_alphanumeric() || c == '\'' || c == '-'
                    || !c.is_ascii()),
                "bad token {w:?} from {line:?}"
            );
        }
        // Full tokenizer agrees on the word sequence.
        let via_tokens: Vec<String> = textmr_nlp::tokenizer::tokenize(&line)
            .into_iter()
            .filter_map(|t| t.as_word().map(str::to_string))
            .collect();
        let via_words: Vec<String> = textmr_nlp::tokenizer::words(&line).collect();
        prop_assert_eq!(via_tokens, via_words);
    }

    #[test]
    fn tagger_tags_every_word_token(line in "[a-zA-Z ,.]{0,60}") {
        let tagger = textmr_nlp::Tagger::default();
        let tagged = tagger.tag_line(&line);
        let words = textmr_nlp::tokenizer::words(&line).count();
        prop_assert_eq!(tagged.len(), words);
    }
}

/// Pinned regression (originally found by proptest): the
/// tokenizer once mishandled U+2110 SCRIPT CAPITAL I, which `is_uppercase`
/// but has an identity `to_lowercase` mapping. Kept as an explicit case so
/// it runs on every engine, independent of property-test seed replay.
#[test]
fn tokenizer_regression_script_capital_i() {
    let line = "\u{2110}";
    let tokens: Vec<String> = textmr_nlp::tokenizer::words(line).collect();
    assert_eq!(tokens, vec![line.to_string()]);
    for w in textmr_nlp::tokenizer::words(line) {
        assert!(w.chars().all(|c| !c.is_whitespace()
            && (!c.is_uppercase() || c.to_lowercase().eq(std::iter::once(c)))));
    }
    let via_tokens: Vec<String> = textmr_nlp::tokenizer::tokenize(line)
        .into_iter()
        .filter_map(|t| t.as_word().map(str::to_string))
        .collect();
    assert_eq!(via_tokens, tokens);
}
