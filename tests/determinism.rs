//! Sequential vs parallel execution must be indistinguishable: the worker
//! pool (`ClusterConfig::worker_threads`) and the shuffle fetcher pool
//! (`ClusterConfig::shuffle_fetchers`) may only change real wall-clock
//! time (and, for fetchers, the NIC model's virtual shuffle time), never
//! the job's outputs or any timing-free profile counter.
//!
//! Most tests use the default `JobConfig` (fixed spill fraction, no
//! adaptive controller, no shared frequent-key registry), under which spill
//! boundaries depend only on byte counts — so the full structural profile
//! signature is deterministic. The shared-frequent-keys test adds the
//! `FrequentKeyRegistry` with its designated-publisher protocol, proving
//! absorption counts stay identical too. Measured nanosecond totals
//! (`OpTimes`) are excluded: they are noisy even between two sequential
//! runs. The timing-adaptive spill matcher is likewise out of scope here —
//! its spill boundaries react to measured rates by design.

use std::sync::Arc;
use textmr_apps::{AccessLogJoin, WordCount, SOURCE_RANKINGS, SOURCE_VISITS};
use textmr_core::{optimized, FreqBufferConfig, OptimizationConfig};
use textmr_data::text::CorpusConfig;
use textmr_data::weblog::WeblogConfig;
use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig, JobRun};
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::job::Job;

fn run_with(workers: usize, job: Arc<dyn Job>, dfs: &SimDfs, inputs: &[(&str, u8)]) -> JobRun {
    let mut cluster = ClusterConfig::local().with_worker_threads(workers);
    cluster.spill_buffer_bytes = 128 << 10; // several spills per task
    let cfg = JobConfig::default().with_reducers(5);
    run_job(&cluster, &cfg, job, dfs, inputs).unwrap()
}

fn assert_identical(job: Arc<dyn Job>, dfs: &SimDfs, inputs: &[(&str, u8)]) {
    let seq = run_with(1, job.clone(), dfs, inputs);
    for workers in [2, 4, 8] {
        let par = run_with(workers, job.clone(), dfs, inputs);
        // Byte-identical outputs, per partition and overall.
        assert_eq!(
            seq.outputs,
            par.outputs,
            "{} outputs differ at {workers} workers",
            job.name()
        );
        assert_eq!(seq.sorted_pairs(), par.sorted_pairs());
        // Identical timing-free profile: task counts, per-task record and
        // byte counters, per-spill structure, shuffled bytes.
        assert_eq!(
            seq.profile.signature(),
            par.profile.signature(),
            "{} profile signature differs at {workers} workers",
            job.name()
        );
        assert_eq!(seq.profile.map_spans.len(), par.profile.map_spans.len());
        assert_eq!(
            seq.profile.reduce_spans.len(),
            par.profile.reduce_spans.len()
        );
    }
}

#[test]
fn wordcount_is_deterministic_across_worker_counts() {
    let mut dfs = SimDfs::new(6, 32 << 10);
    dfs.put(
        "corpus",
        CorpusConfig {
            lines: 3_000,
            vocab_size: 4_000,
            ..Default::default()
        }
        .generate_bytes(),
    );
    assert_identical(Arc::new(WordCount), &dfs, &[("corpus", 0)]);
}

#[test]
fn shared_frequent_keys_are_deterministic_across_workers_and_fetchers() {
    let mut dfs = SimDfs::new(6, 32 << 10);
    dfs.put(
        "corpus",
        CorpusConfig {
            lines: 3_000,
            vocab_size: 4_000,
            ..Default::default()
        }
        .generate_bytes(),
    );
    let job: Arc<dyn Job> = Arc::new(WordCount);
    let run_with = |workers: usize, fetchers: usize| {
        let mut cluster = ClusterConfig::local()
            .with_worker_threads(workers)
            .with_shuffle_fetchers(fetchers);
        cluster.spill_buffer_bytes = 128 << 10;
        // Pin the sampling fraction so the test isolates pool/registry
        // effects (the auto-tuner is deterministic too, but noisier to
        // reason about). `optimized` builds a fresh registry per call —
        // essential, or runs would share frozen key sets.
        let fb = FreqBufferConfig {
            sampling_fraction: Some(0.05),
            ..Default::default()
        };
        let cfg = optimized(
            JobConfig::default().with_reducers(5),
            OptimizationConfig::freq_only(fb),
        );
        run_job(&cluster, &cfg, job.clone(), &dfs, &[("corpus", 0)]).unwrap()
    };
    let base = run_with(1, 1);
    let base_sig = base.profile.signature();
    let absorbed: u64 = base
        .profile
        .map_tasks
        .iter()
        .map(|t| t.freq_absorbed_records)
        .sum();
    assert!(
        absorbed > 0,
        "frequency buffering absorbed nothing — the test is vacuous"
    );
    for workers in [1, 4] {
        for fetchers in [1, 4] {
            let run = run_with(workers, fetchers);
            assert_eq!(
                base.outputs, run.outputs,
                "outputs differ at workers={workers} fetchers={fetchers}"
            );
            assert_eq!(
                base_sig,
                run.profile.signature(),
                "signature differs at workers={workers} fetchers={fetchers}"
            );
        }
    }
}

#[test]
fn access_log_join_is_deterministic_across_worker_counts() {
    let mut dfs = SimDfs::new(6, 32 << 10);
    let weblog = WeblogConfig {
        num_urls: 600,
        num_visits: 6_000,
        ..Default::default()
    };
    dfs.put("visits", weblog.visits_bytes());
    dfs.put("rankings", weblog.rankings_bytes());
    assert_identical(
        Arc::new(AccessLogJoin),
        &dfs,
        &[("visits", SOURCE_VISITS), ("rankings", SOURCE_RANKINGS)],
    );
}
