//! Fairness and admission-control regressions for `textmr-serve`.
//!
//! The weighted fair-share bound is pinned at the multiplexer level with
//! synthetic fixed durations (engine durations are measured, so an
//! end-to-end bound would flake); admission control is pinned end to end,
//! including the no-residue guarantee for rejected submissions.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use textmr_apps::WordCount;
use textmr_data::text::CorpusConfig;
use textmr_engine::cluster::{ClusterConfig, JobConfig};
use textmr_engine::fault::SpeculationConfig;
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::job::{JobDag, StageInput};
use textmr_engine::trace::TaskKind;
use textmr_serve::sched::{multiplex, AttemptInfo, JobPlan, TaskChain};
use textmr_serve::{serve, AdmissionError, JobRequest, ServeConfig, TenantSpec};

fn tenant(name: &str, weight: u64, max_jobs: usize) -> TenantSpec {
    TenantSpec {
        name: name.to_string(),
        weight,
        max_jobs,
    }
}

/// A synthetic all-maps plan: `tasks` equal-duration chains in round 0.
fn flat_plan(job: usize, tenant: usize, tasks: usize, dur: u64) -> JobPlan {
    let chains: Vec<TaskChain> = (0..tasks)
        .map(|t| TaskChain {
            round: 0,
            kind: TaskKind::Map,
            task: t,
            attempts: vec![AttemptInfo {
                entry: t,
                node: 0,
                dur,
            }],
        })
        .collect();
    let rounds = vec![((0..tasks).collect(), Vec::new())];
    JobPlan {
        job,
        tenant,
        arrival: 0,
        chains,
        rounds,
    }
}

/// Tenants weighted 1:3 contending for a single map slot: at every
/// prefix of the grant sequence (while both still have backlog) the
/// heavy tenant's slot-virtual-time stays within one weight-round of 3×
/// the light tenant's — the pinned fair-share bound.
#[test]
fn slot_virtual_time_tracks_weights_within_bound() {
    let dur = 10u64;
    let tasks = 24;
    let plans = vec![flat_plan(1, 0, tasks, dur), flat_plan(2, 1, tasks, dur)];
    let tenants = [tenant("light", 1, 8), tenant("heavy", 3, 8)];
    let mux = multiplex(1, 1, 1, &tenants, &plans);
    assert_eq!(mux.placed.len(), tasks * 2);

    let (mut busy_light, mut busy_heavy) = (0i128, 0i128);
    let (mut left_light, mut left_heavy) = (tasks, tasks);
    for p in &mux.placed {
        if p.job == 1 {
            busy_light += i128::from(dur);
            left_light -= 1;
        } else {
            busy_heavy += i128::from(dur);
            left_heavy -= 1;
        }
        if left_light > 0 && left_heavy > 0 {
            let drift = (busy_heavy - 3 * busy_light).abs();
            assert!(
                drift <= 3 * i128::from(dur),
                "fair-share drift {drift} beyond bound after \
                 heavy={busy_heavy} light={busy_light}"
            );
        }
    }
    // Totals: both tenants eventually get all their work.
    assert_eq!(mux.shares[0].map_busy, tasks as u64 * dur);
    assert_eq!(mux.shares[1].map_busy, tasks as u64 * dur);
    // The single slot is never double-booked and never idles mid-backlog.
    let mut prev_end = 0;
    for p in &mux.placed {
        assert!(p.start >= prev_end, "slot double-booked");
        prev_end = p.end;
    }
    assert_eq!(mux.wall, 2 * tasks as u64 * dur);
}

fn corpus_dfs(nodes: usize) -> SimDfs {
    let mut dfs = SimDfs::new(nodes, 4 << 10);
    dfs.put(
        "corpus",
        CorpusConfig {
            lines: 150,
            vocab_size: 100,
            ..Default::default()
        }
        .generate_bytes(),
    );
    dfs
}

fn wc_request(tenant: usize, arrival: u64, name: &str, cfg: JobConfig) -> JobRequest {
    JobRequest {
        tenant,
        arrival,
        name: name.to_string(),
        plan: JobDag::new().stage(Arc::new(WordCount), cfg, StageInput::dfs("corpus")),
        cache_prefix: None,
    }
}

/// Fresh, empty, per-test temp root so residue assertions see only this
/// test's spill directories.
fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("textmr-serve-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn assert_empty_and_remove(root: &Path) {
    let leftovers: Vec<_> = std::fs::read_dir(root)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    assert!(leftovers.is_empty(), "leaked temp dirs: {leftovers:?}");
    let _ = std::fs::remove_dir_all(root);
}

/// A tenant over quota gets the named admission error; the rejected job
/// never runs, so the serve call leaves no temp-dir residue beyond what
/// the admitted jobs clean up themselves.
#[test]
fn quota_exceeding_tenant_is_rejected_cleanly() {
    let root = temp_root("quota");
    let mut cluster = ClusterConfig::local();
    cluster.temp_dir = Some(root.clone());
    let dfs = corpus_dfs(cluster.nodes);
    let tenants = [tenant("capped", 1, 1), tenant("free", 1, 4)];
    let requests = vec![
        wc_request(0, 0, "first", JobConfig::default().with_reducers(2)),
        wc_request(0, 10, "over-quota", JobConfig::default().with_reducers(2)),
        wc_request(1, 20, "other-tenant", JobConfig::default().with_reducers(2)),
    ];
    let run =
        serve(&cluster, &tenants, requests, &dfs, &ServeConfig::default()).expect("serve failed");
    assert_eq!(run.jobs.len(), 2, "quota must not block the other tenant");
    assert_eq!(run.rejected.len(), 1);
    let rej = &run.rejected[0];
    assert_eq!(rej.name, "over-quota");
    assert_eq!(
        rej.error,
        AdmissionError::QuotaExceeded {
            tenant: 0,
            quota: 1
        }
    );
    assert!(rej.error.to_string().contains("quota"));
    assert_eq!(run.profile.tenants[0].jobs_admitted, 1);
    assert_eq!(run.profile.tenants[0].jobs_rejected, 1);
    assert_empty_and_remove(&root);
}

/// Unknown tenants and speculative plans are rejected by name, before
/// anything runs.
#[test]
fn bad_submissions_get_named_admission_errors() {
    let root = temp_root("badsub");
    let mut cluster = ClusterConfig::local();
    cluster.temp_dir = Some(root.clone());
    let dfs = corpus_dfs(cluster.nodes);
    let tenants = [tenant("only", 1, 4)];
    let spec_cfg = JobConfig::default()
        .with_reducers(2)
        .with_speculation(SpeculationConfig::default());
    let requests = vec![
        wc_request(7, 0, "ghost-tenant", JobConfig::default().with_reducers(2)),
        wc_request(0, 0, "speculative", spec_cfg),
    ];
    let run =
        serve(&cluster, &tenants, requests, &dfs, &ServeConfig::default()).expect("serve failed");
    assert!(run.jobs.is_empty(), "no valid submissions, nothing may run");
    assert_eq!(run.rejected.len(), 2);
    assert_eq!(
        run.rejected[0].error,
        AdmissionError::UnknownTenant { tenant: 7 }
    );
    assert_eq!(
        run.rejected[1].error,
        AdmissionError::SpeculationUnsupported {
            tenant: 0,
            job: "speculative".into()
        }
    );
    assert_eq!(run.profile.wall, 0);
    assert_empty_and_remove(&root);
}
