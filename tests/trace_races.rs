//! End-to-end audit of the happens-before race checker
//! ([`textmr_engine::trace::race`]) against *real* traces.
//!
//! Three claims, each load-bearing for the determinism audit:
//!
//! 1. A genuinely traced job — real scheduler, real shuffle, real spill
//!    hand-offs — produces a trace the checker accepts (no false races).
//! 2. Every shipped `results/trace_*.json` round-trips through
//!    [`JobTrace::from_chrome_json`] and audits clean, so the published
//!    figures rest on race-free schedules.
//! 3. Seeded corruptions of a valid trace — a swapped spill hand-off, an
//!    attempt shifted onto a busy interval, a dropped shuffle barrier —
//!    are all rejected, even when the per-lane tiling checks still pass.
//!    Proptest drives the victim selection so every eligible entry in the
//!    real trace gets mutated across runs, not just a hand-picked one.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use textmr_apps::WordCount;
use textmr_data::text::CorpusConfig;
use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig};
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::trace::race::{check_races, RaceKind};
use textmr_engine::trace::{
    EntryDetail, IdleKind, JobTrace, LaneRole, Span, SpanKind, TaskKind, TraceEntry,
};

fn corpus_dfs() -> SimDfs {
    let mut dfs = SimDfs::new(6, 8 << 10);
    dfs.put(
        "corpus",
        CorpusConfig {
            lines: 600,
            vocab_size: 300,
            ..Default::default()
        }
        .generate_bytes(),
    );
    dfs
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("textmr-races-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One real traced run, computed once and cloned per mutation.
fn real_trace() -> &'static JobTrace {
    static TRACE: OnceLock<JobTrace> = OnceLock::new();
    TRACE.get_or_init(|| {
        let root = temp_root("baseline");
        let mut cluster = ClusterConfig::local()
            .with_worker_threads(2)
            .with_shuffle_fetchers(2);
        cluster.spill_buffer_bytes = 64 << 10;
        cluster.temp_dir = Some(root.clone());
        let run = run_job(
            &cluster,
            &JobConfig::default().with_trace(),
            Arc::new(WordCount),
            &corpus_dfs(),
            &[("corpus", 0)],
        )
        .unwrap();
        let _ = std::fs::remove_dir_all(&root);
        let trace = run.trace.expect("trace requested");
        trace.check().unwrap();
        trace
    })
}

fn lanes_mut(e: &mut TraceEntry) -> &mut Vec<textmr_engine::trace::TaskLane> {
    match &mut e.detail {
        EntryDetail::Lanes(l) => l,
        EntryDetail::Flat(_) => panic!("flat entry in a fault-free trace"),
    }
}

fn lanes_of(e: &TraceEntry) -> &[textmr_engine::trace::TaskLane] {
    match &e.detail {
        EntryDetail::Lanes(l) => l,
        EntryDetail::Flat(_) => panic!("flat entry in a fault-free trace"),
    }
}

/// Entries whose Support lane does real spill work strictly after the
/// attempt starts — rotating that burst in front of its hand-off is the
/// "support consumed a segment before the map produced it" corruption.
fn handoff_victims(trace: &JobTrace) -> Vec<usize> {
    trace
        .entries
        .iter()
        .enumerate()
        .filter(|(_, e)| {
            e.kind == TaskKind::Map
                && lanes_of(e).iter().any(|l| {
                    matches!(l.role, LaneRole::Support)
                        && l.spans
                            .iter()
                            .any(|s| matches!(s.kind, SpanKind::Op(_)) && s.start > e.start)
                })
        })
        .map(|(i, _)| i)
        .collect()
}

/// Reduce entries that wait on their shuffle before the first op — the
/// candidates for the dropped-barrier and early-start corruptions.
fn reduce_victims(trace: &JobTrace) -> Vec<usize> {
    trace
        .entries
        .iter()
        .enumerate()
        .filter(|(_, e)| {
            e.kind == TaskKind::Reduce && e.start > 0 && {
                let lanes = lanes_of(e);
                let fetch_flows = lanes.iter().any(|l| {
                    matches!(l.role, LaneRole::Fetcher(_))
                        && l.spans.iter().any(|s| s.flow.is_some())
                });
                let reduce_waits = lanes.iter().any(|l| {
                    matches!(l.role, LaneRole::Reduce)
                        && l.spans
                            .iter()
                            .any(|s| matches!(s.kind, SpanKind::Op(_)) && s.start > e.start)
                });
                fetch_flows && reduce_waits
            }
        })
        .map(|(i, _)| i)
        .collect()
}

/// Rotate a Support lane's op burst in front of the spill-waits that
/// synchronize it, keeping the lane exactly tiled.
fn swap_handoff(trace: &mut JobTrace, entry: usize) {
    let e = &mut trace.entries[entry];
    let (e_start, e_end) = (e.start, e.end);
    let support = lanes_mut(e)
        .iter_mut()
        .find(|l| matches!(l.role, LaneRole::Support))
        .unwrap();
    let mut rebuilt = Vec::new();
    let mut cursor = e_start;
    for pass in [true, false] {
        for s in &support.spans {
            if matches!(s.kind, SpanKind::Op(_)) == pass {
                let d = s.end - s.start;
                let mut moved = *s;
                moved.start = cursor;
                moved.end = cursor + d;
                rebuilt.push(moved);
                cursor += d;
            }
        }
    }
    assert_eq!(cursor, e_end, "rotation must preserve tiling");
    support.spans = rebuilt;
}

/// Compact the Reduce lane's ops to the attempt start — the merge now
/// begins while the fetchers are still pulling runs (no shuffle barrier).
fn drop_shuffle_barrier(trace: &mut JobTrace, entry: usize) {
    let e = &mut trace.entries[entry];
    let (e_start, e_end) = (e.start, e.end);
    let rl = lanes_mut(e)
        .iter_mut()
        .find(|l| matches!(l.role, LaneRole::Reduce))
        .unwrap();
    let mut rebuilt = Vec::new();
    let mut cursor = e_start;
    for s in &rl.spans {
        if matches!(s.kind, SpanKind::Op(_)) {
            let d = s.end - s.start;
            let mut moved = *s;
            moved.start = cursor;
            moved.end = cursor + d;
            rebuilt.push(moved);
            cursor += d;
        }
    }
    assert!(cursor < e_end, "victim lane had no idle to absorb");
    rebuilt.push(Span {
        start: cursor,
        end: e_end,
        kind: SpanKind::Idle(IdleKind::Done),
        flow: None,
    });
    rl.spans = rebuilt;
}

/// Shift a whole reduce attempt to virtual time zero: its fetches now
/// overlap (or precede) the map attempts that publish the outputs it
/// reads.
fn shift_reduce_to_origin(trace: &mut JobTrace, entry: usize) {
    let e = &mut trace.entries[entry];
    let shift = e.start;
    e.start -= shift;
    e.end -= shift;
    for lane in lanes_mut(e) {
        for s in &mut lane.spans {
            s.start -= shift;
            s.end -= shift;
        }
    }
}

#[test]
fn real_traced_job_is_race_free() {
    let report = check_races(real_trace());
    assert!(
        report.is_clean(),
        "real run must audit clean:\n{}",
        report.render()
    );
    assert!(report.edges > 0, "a real job must have cross-lane edges");
    assert!(report.accesses.get("mapout").copied().unwrap_or(0) > 0);
    assert!(report.accesses.get("runs").copied().unwrap_or(0) > 0);
}

#[test]
fn shipped_result_traces_audit_clean() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let mut audited = 0usize;
    let mut names: Vec<_> = std::fs::read_dir(&dir)
        .expect("results/ directory")
        .map(|e| e.unwrap().path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("trace_") && n.ends_with(".json"))
        })
        .collect();
    names.sort();
    for path in names {
        let text = std::fs::read_to_string(&path).unwrap();
        let trace =
            JobTrace::from_chrome_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        trace
            .check()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let report = check_races(&trace);
        assert!(
            report.is_clean(),
            "{} must audit clean:\n{}",
            path.display(),
            report.render()
        );
        audited += 1;
    }
    assert!(
        audited >= 5,
        "expected the five shipped traces, audited {audited}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// A swapped spill hand-off stays invisible to the per-lane tiling
    /// checks but the happens-before pass flags it.
    #[test]
    fn swapped_handoff_is_rejected(pick in any::<u64>()) {
        let victims = handoff_victims(real_trace());
        prop_assert!(!victims.is_empty(), "real run must spill");
        let mut trace = real_trace().clone();
        swap_handoff(&mut trace, victims[(pick % victims.len() as u64) as usize]);
        trace.check().unwrap(); // tiling still holds
        let report = check_races(&trace);
        prop_assert!(
            report.diagnostics.iter().any(|d| {
                d.kind == RaceKind::Structure && d.resource.starts_with("handoff:")
            }),
            "expected a hand-off finding:\n{}",
            report.render()
        );
    }

    /// Removing the shuffle barrier (merge starts while runs are still
    /// arriving) is a `runs` race.
    #[test]
    fn dropped_barrier_is_rejected(pick in any::<u64>()) {
        let victims = reduce_victims(real_trace());
        prop_assert!(!victims.is_empty(), "real run must shuffle");
        let mut trace = real_trace().clone();
        drop_shuffle_barrier(&mut trace, victims[(pick % victims.len() as u64) as usize]);
        trace.check().unwrap(); // tiling still holds
        let report = check_races(&trace);
        prop_assert!(
            report.diagnostics.iter().any(|d| {
                d.kind == RaceKind::Race && d.resource.starts_with("runs:")
            }),
            "expected a runs race:\n{}",
            report.render()
        );
    }

    /// A reduce attempt rescheduled to time zero overlaps something it
    /// must not: the map outputs it fetches, or another attempt's slot.
    #[test]
    fn early_reduce_attempt_is_rejected(pick in any::<u64>()) {
        let victims = reduce_victims(real_trace());
        prop_assert!(!victims.is_empty(), "real run must shuffle");
        let mut trace = real_trace().clone();
        shift_reduce_to_origin(&mut trace, victims[(pick % victims.len() as u64) as usize]);
        let report = check_races(&trace);
        prop_assert!(
            report.diagnostics.iter().any(|d| d.kind == RaceKind::Race),
            "expected a race:\n{}",
            report.render()
        );
    }

    /// A duplicate attempt on an occupied slot is the canonical
    /// overlapping-resource-span corruption.
    #[test]
    fn duplicate_slot_attempt_is_rejected(pick in any::<u64>()) {
        let base = real_trace();
        let eligible: Vec<usize> = base
            .entries
            .iter()
            .enumerate()
            .filter(|(_, e)| e.end > e.start)
            .map(|(i, _)| i)
            .collect();
        prop_assert!(!eligible.is_empty());
        let mut trace = base.clone();
        let mut dup = trace.entries[eligible[(pick % eligible.len() as u64) as usize]].clone();
        dup.attempt += 1;
        trace.entries.push(dup);
        let report = check_races(&trace);
        prop_assert!(
            report.diagnostics.iter().any(|d| {
                d.kind == RaceKind::Race && d.resource.starts_with("slot:")
            }),
            "expected a slot race:\n{}",
            report.render()
        );
    }
}
