//! Deterministic chaos: for *any* seeded [`FaultPlan`] whose faults stay
//! under the attempt budget, recovery must be invisible — output pairs and
//! the timing-free job signature are identical to a fault-free run at every
//! worker/fetcher count — and plans that exhaust the budget must abort
//! cleanly: a named error, no hung pool, and no leaked spill directories.
//!
//! Every job here runs under a dedicated temp root so the suite can assert
//! the engine left nothing behind (the shared per-process root is polluted
//! by other test threads).

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use textmr_apps::WordCount;
use textmr_data::text::CorpusConfig;
use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig, JobRun};
use textmr_engine::fault::{ChaosShape, FaultPlan, SpeculationConfig};
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::metrics::JobSignature;

fn corpus_dfs() -> SimDfs {
    let mut dfs = SimDfs::new(6, 8 << 10);
    dfs.put(
        "corpus",
        CorpusConfig {
            lines: 600,
            vocab_size: 300,
            ..Default::default()
        }
        .generate_bytes(),
    );
    dfs
}

/// A local cluster writing all spills under `root` (so tests can assert
/// the root is empty afterwards).
fn cluster(root: &Path, workers: usize, fetchers: usize) -> ClusterConfig {
    let mut c = ClusterConfig::local()
        .with_worker_threads(workers)
        .with_shuffle_fetchers(fetchers);
    c.spill_buffer_bytes = 64 << 10;
    c.temp_dir = Some(root.to_path_buf());
    c
}

/// Fresh, empty, per-call temp root.
fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("textmr-chaos-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Asserts the engine removed every job directory under `root`, then
/// removes `root` itself.
fn assert_empty_and_remove(root: &Path) {
    let leftovers: Vec<_> = std::fs::read_dir(root)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    assert!(leftovers.is_empty(), "leaked spill dirs: {leftovers:?}");
    let _ = std::fs::remove_dir_all(root);
}

struct Baseline {
    pairs: Vec<(Vec<u8>, Vec<u8>)>,
    signature: JobSignature,
    shape: ChaosShape,
    /// Home node of each map task in the fault-free schedule.
    map_nodes: Vec<usize>,
}

/// The fault-free reference run (workers = 1, fetchers = 1), computed once.
fn baseline() -> &'static Baseline {
    static BASELINE: OnceLock<Baseline> = OnceLock::new();
    BASELINE.get_or_init(|| {
        let root = temp_root("baseline");
        let dfs = corpus_dfs();
        let run = run_job(
            &cluster(&root, 1, 1),
            &JobConfig::default(),
            Arc::new(WordCount),
            &dfs,
            &[("corpus", 0)],
        )
        .unwrap();
        assert_empty_and_remove(&root);
        let shape = ChaosShape {
            map_tasks: run.profile.map_tasks.len(),
            reducers: 4,
            nodes: 6,
            max_attempts: 4,
            ..ChaosShape::default()
        };
        Baseline {
            pairs: run.sorted_pairs(),
            signature: run.profile.signature(),
            shape,
            map_nodes: run.profile.map_spans.iter().map(|s| s.node).collect(),
        }
    })
}

fn run_with_plan(tag: &str, plan: &FaultPlan, workers: usize, fetchers: usize) -> JobRun {
    let root = temp_root(tag);
    let dfs = corpus_dfs();
    let run = run_job(
        &cluster(&root, workers, fetchers),
        &JobConfig::default().with_fault_plan(plan.clone()),
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    assert_empty_and_remove(&root);
    run
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The headline invariance property: any survivable generated plan —
    /// map/reduce record faults, spill-write faults, transient shuffle
    /// faults, straggler nodes — yields byte-identical output and an
    /// identical timing-free signature, sequentially and on pools, with no
    /// spill directory left behind.
    #[test]
    fn recovery_is_invisible_for_any_survivable_plan(seed in any::<u64>()) {
        let base = baseline();
        let plan = FaultPlan::generate(seed, &base.shape);
        for (workers, fetchers) in [(1usize, 1usize), (4, 4)] {
            let run = run_with_plan(
                &format!("inv-{seed:016x}-w{workers}f{fetchers}"),
                &plan,
                workers,
                fetchers,
            );
            prop_assert_eq!(&run.sorted_pairs(), &base.pairs,
                "outputs diverged: seed={} workers={} fetchers={}", seed, workers, fetchers);
            prop_assert_eq!(&run.profile.signature(), &base.signature,
                "signature diverged: seed={} workers={} fetchers={}", seed, workers, fetchers);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Plans that exhaust the attempt budget abort with a named error —
    /// and still clean up every spill directory, on the pool included.
    #[test]
    fn over_budget_plans_abort_cleanly(seed in any::<u64>()) {
        let base = baseline();
        let max_attempts = base.shape.max_attempts;
        // Doom one target past the budget: every allowed attempt fails.
        let (mut plan, needle) = match seed % 3 {
            0 => {
                let t = (seed / 3) as usize % base.shape.map_tasks;
                let mut p = FaultPlan::new();
                for a in 0..max_attempts {
                    p = p.map_fail_at(t, a, 1 + seed % 20);
                }
                (p, format!("map task {t} failed {max_attempts} attempts"))
            }
            1 => {
                let r = (seed / 3) as usize % base.shape.reducers;
                let mut p = FaultPlan::new();
                for a in 0..max_attempts {
                    p = p.reduce_fail_at(r, a, 1 + seed % 20);
                }
                (p, format!("reduce task {r} failed {max_attempts} attempts"))
            }
            _ => {
                let m = (seed / 3) as usize % base.shape.map_tasks;
                let mut p = FaultPlan::new();
                for a in 0..max_attempts {
                    p = p.shuffle_fail(m, a);
                }
                (p, format!("shuffle fetch of map output {m}"))
            }
        };
        // Half the cases also stretch a node, so the abort path is
        // exercised under straggler scheduling too.
        if seed.is_multiple_of(2) {
            plan = plan.slow_node(0, 3);
        }

        let root = temp_root(&format!("abort-{seed:016x}"));
        let dfs = corpus_dfs();
        for workers in [1usize, 4] {
            let cfg = JobConfig {
                max_attempts,
                ..JobConfig::default().with_fault_plan(plan.clone())
            };
            let err = run_job(
                &cluster(&root, workers, 2),
                &cfg,
                Arc::new(WordCount),
                &dfs,
                &[("corpus", 0)],
            );
            let err = match err {
                Err(e) => e,
                Ok(_) => panic!("over-budget plan completed: seed={seed} workers={workers}"),
            };
            prop_assert!(err.to_string().contains(&needle),
                "seed={} workers={}: expected {:?} in {:?}", seed, workers, needle, err.to_string());
        }
        assert_empty_and_remove(&root);
    }
}

/// Speculative execution earns its keep: with one straggler node, a
/// speculation-enabled run finishes in strictly less virtual time than the
/// same plan without speculation, with identical output pairs.
#[test]
fn speculation_beats_a_straggler_node() {
    let plan = FaultPlan::new().slow_node(0, 24);
    let dfs = corpus_dfs();

    let root = temp_root("spec-off");
    let slow = run_job(
        &cluster(&root, 1, 1),
        &JobConfig::default().with_fault_plan(plan.clone()),
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    assert_empty_and_remove(&root);

    let root = temp_root("spec-on");
    let spec = run_job(
        &cluster(&root, 1, 1),
        &JobConfig::default()
            .with_fault_plan(plan)
            .with_speculation(SpeculationConfig::default()),
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    assert_empty_and_remove(&root);

    assert_eq!(slow.sorted_pairs(), spec.sorted_pairs());
    let stats = spec.profile.speculation;
    assert!(stats.backups() > 0, "no backups launched: {stats:?}");
    assert!(stats.wins() > 0, "no backup won: {stats:?}");
    assert!(
        spec.profile.wall < slow.profile.wall,
        "speculation did not help: spec wall {} !< straggler wall {}",
        spec.profile.wall,
        slow.profile.wall
    );
    // Without speculation the stats stay zeroed.
    assert_eq!(slow.profile.speculation.backups(), 0);
}

/// A fault injected into a *speculative backup* attempt must never disturb
/// the job: the backup dies, the primary still wins, the output is
/// identical to the fault-free baseline, and the trace records the dead
/// backup lane.
#[test]
fn faulty_backup_dies_and_primary_still_wins() {
    use textmr_engine::trace::{AttemptKind, EntryDetail, TaskKind};

    let base = baseline();
    // Stretch a node that actually hosts a map task so a map backup
    // launches; every backup is doomed.
    let slow = base.map_nodes[0];
    let mut plan = FaultPlan::new().slow_node(slow, 24);
    for t in 0..base.shape.map_tasks {
        plan = plan.map_backup_fail_after(t, 2);
    }

    let root = temp_root("backup-fault");
    let dfs = corpus_dfs();
    let run = run_job(
        &cluster(&root, 1, 1),
        &JobConfig::default()
            .with_fault_plan(plan)
            .with_speculation(SpeculationConfig::default())
            .with_trace(),
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    assert_empty_and_remove(&root);

    assert_eq!(run.sorted_pairs(), base.pairs);
    let stats = run.profile.speculation;
    assert!(stats.map_backups > 0, "no map backup launched: {stats:?}");

    let trace = run.trace.as_ref().expect("trace requested");
    trace.check().unwrap();
    let dead: Vec<_> = trace
        .entries
        .iter()
        .filter(|e| matches!(e.detail, EntryDetail::Flat(AttemptKind::Dead)))
        .collect();
    assert!(!dead.is_empty(), "no dead backup lane in the trace");
    for e in &dead {
        assert!(e.backup, "dead lane not marked as a backup: {e:?}");
        assert!(matches!(e.kind, TaskKind::Map));
        assert!(e.end > e.start, "dead backup burned no virtual time");
    }
}

/// Speculation composes with fault injection: backups plus retries still
/// produce exact output.
#[test]
fn speculation_and_faults_compose() {
    let base = baseline();
    let plan = FaultPlan::generate(0xC0FFEE, &base.shape).slow_node(2, 16);
    let root = temp_root("spec-chaos");
    let dfs = corpus_dfs();
    let run = run_job(
        &cluster(&root, 4, 4),
        &JobConfig::default()
            .with_fault_plan(plan)
            .with_speculation(SpeculationConfig::default()),
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    assert_empty_and_remove(&root);
    assert_eq!(run.sorted_pairs(), base.pairs);
}
