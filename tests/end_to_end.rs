//! End-to-end integration tests: every benchmark application runs on the
//! full engine over generated data and matches the reference executor.

use std::sync::Arc;
use textmr_apps::*;
use textmr_data::graph::GraphConfig;
use textmr_data::text::CorpusConfig;
use textmr_data::weblog::WeblogConfig;
use textmr_engine::cluster::{run_job, ClusterConfig, JobConfig};
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::job::Job;
use textmr_engine::reference::{flatten_sorted, reference_run};

fn small_cluster() -> ClusterConfig {
    let mut c = ClusterConfig::local();
    c.spill_buffer_bytes = 256 << 10; // force multiple spills per task
    c
}

fn check_against_reference(job: Arc<dyn Job>, dfs: &SimDfs, inputs: &[(&str, u8)]) {
    check_impl(job, dfs, inputs, true)
}

/// Like [`check_against_reference`] but for jobs whose reduce emits keys
/// different from the grouping key (e.g. joins): their output partitions
/// are ordered by *grouping* key, not output key, so the sortedness check
/// does not apply.
fn check_against_reference_unsorted(job: Arc<dyn Job>, dfs: &SimDfs, inputs: &[(&str, u8)]) {
    check_impl(job, dfs, inputs, false)
}

fn check_impl(job: Arc<dyn Job>, dfs: &SimDfs, inputs: &[(&str, u8)], sorted_output: bool) {
    let cfg = JobConfig::default().with_reducers(3);
    let engine = run_job(&small_cluster(), &cfg, job.clone(), dfs, inputs).unwrap();
    let reference = reference_run(job.as_ref(), dfs, inputs, cfg.num_reducers).unwrap();
    assert_eq!(
        engine.sorted_pairs(),
        flatten_sorted(&reference),
        "engine output diverged from reference for {}",
        job.name()
    );
    if sorted_output {
        // Each partition must be key-sorted (MapReduce's sort contract,
        // which holds whenever reduce emits its grouping key).
        for part in &engine.outputs {
            assert!(
                part.windows(2).all(|w| w[0].0 <= w[1].0),
                "unsorted partition"
            );
        }
    }
}

fn corpus_dfs(lines: usize) -> SimDfs {
    let mut dfs = SimDfs::new(6, 64 << 10);
    dfs.put(
        "corpus",
        CorpusConfig {
            lines,
            vocab_size: 5_000,
            ..Default::default()
        }
        .generate_bytes(),
    );
    dfs
}

#[test]
fn wordcount_end_to_end() {
    check_against_reference(Arc::new(WordCount), &corpus_dfs(4000), &[("corpus", 0)]);
}

#[test]
fn inverted_index_end_to_end() {
    check_against_reference(Arc::new(InvertedIndex), &corpus_dfs(2000), &[("corpus", 0)]);
}

#[test]
fn word_pos_tag_end_to_end() {
    // The tagger is expensive; keep the corpus small.
    check_against_reference(
        Arc::new(WordPosTag::new()),
        &corpus_dfs(400),
        &[("corpus", 0)],
    );
}

#[test]
fn access_log_sum_end_to_end() {
    let mut dfs = SimDfs::new(6, 64 << 10);
    let weblog = WeblogConfig {
        num_urls: 800,
        num_visits: 5_000,
        ..Default::default()
    };
    dfs.put("visits", weblog.visits_bytes());
    check_against_reference(Arc::new(AccessLogSum), &dfs, &[("visits", SOURCE_VISITS)]);
}

#[test]
fn access_log_join_end_to_end() {
    let mut dfs = SimDfs::new(6, 64 << 10);
    let weblog = WeblogConfig {
        num_urls: 500,
        num_visits: 3_000,
        ..Default::default()
    };
    dfs.put("visits", weblog.visits_bytes());
    dfs.put("rankings", weblog.rankings_bytes());
    check_against_reference_unsorted(
        Arc::new(AccessLogJoin),
        &dfs,
        &[("visits", SOURCE_VISITS), ("rankings", SOURCE_RANKINGS)],
    );
}

#[test]
fn pagerank_end_to_end() {
    let mut dfs = SimDfs::new(6, 64 << 10);
    let graph = GraphConfig {
        pages: 2_000,
        mean_out_degree: 6,
        ..Default::default()
    };
    dfs.put("graph", graph.generate_bytes());
    check_against_reference(Arc::new(PageRank::new(2_000)), &dfs, &[("graph", 0)]);
}

#[test]
fn syntext_end_to_end() {
    check_against_reference(
        Arc::new(SynText::new(2, 0.5)),
        &corpus_dfs(1500),
        &[("corpus", 0)],
    );
}

#[test]
fn pagerank_rank_mass_is_conserved_approximately() {
    // One damped iteration keeps total rank ≈ 1 when every page links out.
    let pages = 1_000u64;
    let mut dfs = SimDfs::new(6, 64 << 10);
    let graph = GraphConfig {
        pages: pages as usize,
        mean_out_degree: 8,
        ..Default::default()
    };
    dfs.put("graph", graph.generate_bytes());
    let run = run_job(
        &small_cluster(),
        &JobConfig::default().with_reducers(3),
        Arc::new(PageRank::new(pages)),
        &dfs,
        &[("graph", 0)],
    )
    .unwrap();
    let total: f64 = run
        .sorted_pairs()
        .iter()
        .map(|(_, v)| textmr_apps::pagerank::decode_output(v).unwrap().0)
        .sum();
    assert!((total - 1.0).abs() < 0.01, "total rank {total}");
}

#[test]
fn profiles_account_full_pipeline() {
    let dfs = corpus_dfs(2000);
    let run = run_job(
        &small_cluster(),
        &JobConfig::default().with_reducers(3),
        Arc::new(WordCount),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();
    let p = &run.profile;
    assert!(!p.map_tasks.is_empty());
    assert_eq!(p.map_tasks.len(), p.map_spans.len());
    assert_eq!(p.reduce_tasks.len(), 3);
    // Spills happened (small buffer) and consume work was recorded.
    let spills: usize = p.map_tasks.iter().map(|t| t.spills.len()).sum();
    assert!(
        spills >= p.map_tasks.len(),
        "each task spills at least once"
    );
    let ops = p.total_ops();
    use textmr_engine::metrics::Op;
    for op in [
        Op::Read,
        Op::Map,
        Op::Emit,
        Op::Sort,
        Op::SpillWrite,
        Op::Merge,
        Op::Reduce,
    ] {
        assert!(ops.get(op) > 0, "operation {op} never recorded");
    }
    // Wall covers the map phase plus at least one reduce task.
    assert!(p.wall >= p.map_phase_end);
}
