//! Determinism suite for the round-generic DAG executor
//! ([`textmr_engine::dag`]): chaining rounds on one scheduler must neither
//! perturb the published single-round schedules nor let cluster shape or
//! fault timing leak into any round's data.
//!
//! 1. Every shipped fault-free 1-fetcher figure in `results/` replays
//!    through the round-aware replay (round 0, no boundary) to the
//!    identical `(slot, start, end)` schedule — a single-stage `JobDag`
//!    places through exactly this recurrence
//!    (`dag::tests::single_stage_dag_replays_run_job_bit_identically`
//!    pins DAG == legacy skeleton), so the published figures pin the DAG
//!    path too.
//! 2. A live traced single-stage DAG run replays its own schedule through
//!    a fresh scheduler — the executor adds nothing to round 0.
//! 3. A live traced three-round DAG replays with only the recorded
//!    per-round origins (`begin_round`) added — cross-round virtual-time
//!    continuity is the BSP barrier plus the same recurrence, nothing
//!    hidden.
//! 4. Workers × fetchers × seeded-fault sweep: a chained three-stage DAG
//!    produces byte-identical final pairs and an identical timing-free
//!    [`DagSignature`] whatever the worker pool, fetcher count, or
//!    (survivable) fault plan timing.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};
use textmr_apps::WordCount;
use textmr_data::text::CorpusConfig;
use textmr_engine::cluster::{ClusterConfig, JobConfig};
use textmr_engine::event::{ClusterShape, Scheduler};
use textmr_engine::fault::{ChaosShape, FaultPlan};
use textmr_engine::io::dfs::SimDfs;
use textmr_engine::job::{Emit, Job, JobDag, Record, StageInput, ValueCursor};
use textmr_engine::metrics::VNanos;
use textmr_engine::prelude::{decode_u64, encode_u64, run_dag, DagRun};
use textmr_engine::trace::{JobTrace, TaskKind, TraceEntry};

// ---------------------------------------------------------------------------
// Round-aware replay
// ---------------------------------------------------------------------------

/// The virtual instants later rounds were barriered on: a fault-free
/// round's makespan is its last attempt's end, so the per-round origins
/// are recoverable from the trace itself (pinned against the recorded
/// profile in `live_multi_round_dag_replays_with_recorded_origins`).
fn derived_origins(trace: &JobTrace) -> Vec<VNanos> {
    let rounds = trace.entries.iter().map(|e| e.round).max().unwrap_or(0) + 1;
    (0..rounds.saturating_sub(1))
        .map(|r| {
            trace
                .entries
                .iter()
                .filter(|e| e.round == r)
                .map(|e| e.end)
                .max()
                .expect("round with no entries")
        })
        .collect()
}

/// Replay a (possibly multi-round) trace's schedule through a fresh
/// [`Scheduler`], demanding the identical `(slot, start, end)` for every
/// entry. `origins[r - 1]` is the virtual instant round `r` was barriered
/// on (`begin_round`) — the producing round's makespan; a single-round
/// trace passes `&[]` and this collapses to the legacy replay discipline.
///
/// Trace durations are measured wall time — machine-dependent — so this,
/// not byte equality of regenerated files, is what "bit-for-bit" means
/// for a schedule.
fn replay_dag_trace(name: &str, trace: &JobTrace, origins: &[VNanos]) {
    let mut factors: Vec<Option<u64>> = vec![None; trace.nodes];
    for e in &trace.entries {
        let f = e.factor.max(1);
        match factors[e.node] {
            None => factors[e.node] = Some(f),
            Some(seen) => assert_eq!(seen, f, "{name}: node {} straggler factor flaps", e.node),
        }
    }
    let factors: Vec<u64> = factors.into_iter().map(|f| f.unwrap_or(1)).collect();

    // Group attempts into per-round, per-task chains. Task ids in the
    // trace are round-local; the executor places them at a global base so
    // they stay unique on the shared scheduler — rebuild those bases from
    // the per-round task counts, exactly as `DagExecutor` accumulates
    // them.
    let rounds = trace.entries.iter().map(|e| e.round).max().unwrap_or(0) + 1;
    let mut maps: Vec<BTreeMap<usize, Vec<&TraceEntry>>> = vec![BTreeMap::new(); rounds];
    let mut reduces: Vec<BTreeMap<usize, Vec<&TraceEntry>>> = vec![BTreeMap::new(); rounds];
    for e in &trace.entries {
        match e.kind {
            TaskKind::Map => maps[e.round].entry(e.task).or_default().push(e),
            TaskKind::Reduce => reduces[e.round].entry(e.task).or_default().push(e),
        }
    }
    for chain in maps
        .iter_mut()
        .chain(reduces.iter_mut())
        .flat_map(|m| m.values_mut())
    {
        chain.sort_by_key(|e| e.attempt);
    }

    let unscaled = |e: &TraceEntry, node: usize| -> u64 {
        let scaled = e.end - e.start;
        assert_eq!(
            scaled % factors[node],
            0,
            "{name}: entry duration not a multiple of the node factor"
        );
        scaled / factors[node]
    };

    let shape = ClusterShape {
        nodes: trace.nodes,
        map_slots: trace.map_slots,
        reduce_slots: trace.reduce_slots,
        fetchers: 1,
    };
    let mut sched = Scheduler::new(shape, factors.clone());

    let (mut map_base, mut reduce_base) = (0usize, 0usize);
    for round in 0..rounds {
        if round > 0 {
            let origin = *origins
                .get(round - 1)
                .unwrap_or_else(|| panic!("{name}: no recorded origin for round {round}"));
            sched.begin_round(round, origin);
        }

        let mut map_end = 0u64;
        for (task, chain) in &maps[round] {
            let node = chain[0].node;
            for e in chain {
                assert_eq!(e.node, node, "{name}: r{round} map task {task} hops nodes");
            }
            let durs: Vec<u64> = chain.iter().map(|e| unscaled(e, node)).collect();
            let got = sched.place_map(map_base + task, node, &durs);
            for (p, e) in got.iter().zip(chain) {
                assert_eq!(
                    (p.slot, p.start, p.end),
                    (e.slot, e.start, e.end),
                    "{name}: r{round} map task {task} attempt {} replayed differently",
                    e.attempt
                );
            }
            map_end = map_end.max(chain.last().expect("non-empty chain").end);
        }

        sched.begin_reduce_phase(map_end);
        for (task, chain) in &reduces[round] {
            let node = chain[0].node;
            for e in chain {
                assert_eq!(
                    e.node, node,
                    "{name}: r{round} reduce task {task} hops nodes"
                );
            }
            let durs: Vec<u64> = chain.iter().map(|e| unscaled(e, node)).collect();
            let got = sched.place_reduce(reduce_base + task, node, &durs);
            for (p, e) in got.iter().zip(chain) {
                assert_eq!(
                    (p.slot, p.start, p.end),
                    (e.slot, e.start, e.end),
                    "{name}: r{round} reduce task {task} attempt {} replayed differently",
                    e.attempt
                );
            }
        }
        map_base += maps[round].len();
        reduce_base += reduces[round].len();
    }
}

/// Case 1: every shipped fault-free 1-fetcher figure — the four legacy
/// single-round figures and the multi-round DAG figure alike — replays
/// through the round-aware replay exactly: the DAG refactor left the
/// published schedules untouched. Backup attempts are excluded because their
/// detection times are a driver input the trace does not record;
/// multi-fetcher `_f4` traces are dynamic-loop schedules with their own
/// invariants (`tests/event_equivalence.rs`), and multi-tenant serve
/// traces (job-tagged entries) interleave many jobs whose task ids
/// overlap — their replay identity is pinned at the multiplexer level
/// by `tests/serve_determinism.rs` and the `serve` harness instead.
#[test]
fn shipped_single_fetcher_figures_replay_through_the_dag_recurrence() {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    let mut replayed = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("results/ directory") {
        let path = entry.expect("read results entry").path();
        let name = path
            .file_name()
            .expect("file name")
            .to_string_lossy()
            .into_owned();
        if !name.starts_with("trace_") || !name.ends_with(".json") || name == "trace_diff.json" {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("read trace json");
        let trace = JobTrace::from_chrome_json(&text).unwrap_or_else(|e| panic!("{name}: {e}"));
        if trace.fetchers != 1
            || trace.entries.iter().any(|e| e.backup)
            || trace.entries.iter().any(|e| e.job > 0)
        {
            continue;
        }
        replay_dag_trace(&name, &trace, &derived_origins(&trace));
        replayed.push(name);
    }
    assert!(
        replayed.len() >= 4,
        "expected the four shipped fault-free figures, replayed only {replayed:?}"
    );
}

// ---------------------------------------------------------------------------
// Harness: a chained word-total DAG over a shared corpus
// ---------------------------------------------------------------------------

/// A later stage: consumes framed `(word, count)` pairs untouched and
/// re-aggregates — totals must survive any number of chained rounds.
struct Resum;
impl Job for Resum {
    fn name(&self) -> &str {
        "resum"
    }
    fn map(&self, r: &Record<'_>, e: &mut dyn Emit) {
        e.emit(r.key, r.value);
    }
    fn reduce(&self, k: &[u8], values: &mut dyn ValueCursor, out: &mut dyn Emit) {
        let mut s = 0;
        while let Some(v) = values.next() {
            s += decode_u64(v).unwrap();
        }
        out.emit(k, &encode_u64(s));
    }
}

fn corpus_dfs() -> SimDfs {
    let mut dfs = SimDfs::new(6, 8 << 10);
    dfs.put(
        "corpus",
        CorpusConfig {
            lines: 400,
            vocab_size: 200,
            ..Default::default()
        }
        .generate_bytes(),
    );
    dfs
}

fn cluster(root: &Path, workers: usize, fetchers: usize) -> ClusterConfig {
    let mut c = ClusterConfig::local()
        .with_worker_threads(workers)
        .with_shuffle_fetchers(fetchers);
    c.spill_buffer_bytes = 64 << 10;
    c.temp_dir = Some(root.to_path_buf());
    c
}

fn temp_root(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("textmr-dagdet-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// WordCount → Resum(3) → Resum(2), every stage carrying the same fault
/// plan (straggler factors cannot change mid-DAG) and the same trace flag.
fn chained_dag(plan: &FaultPlan, trace: bool) -> JobDag {
    let cfg = |reducers: usize| {
        let mut c = JobConfig::default()
            .with_reducers(reducers)
            .with_fault_plan(plan.clone());
        if trace {
            c = c.with_trace();
        }
        c
    };
    JobDag::new()
        .stage(Arc::new(WordCount), cfg(4), StageInput::dfs("corpus"))
        .then(Arc::new(Resum), cfg(3))
        .then(Arc::new(Resum), cfg(2))
}

fn run_chained(tag: &str, plan: &FaultPlan, workers: usize, fetchers: usize) -> DagRun {
    let root = temp_root(tag);
    let dfs = corpus_dfs();
    let run = run_dag(
        &cluster(&root, workers, fetchers),
        &chained_dag(plan, false),
        &dfs,
    )
    .unwrap_or_else(|e| panic!("{tag}: chained DAG failed: {e}"));
    let _ = std::fs::remove_dir_all(&root);
    run
}

// ---------------------------------------------------------------------------
// 2–3. Live DAG runs replay their own schedules
// ---------------------------------------------------------------------------

/// Case 2: a single-stage DAG's trace replays through a fresh scheduler with no
/// round boundary at all — the executor adds nothing to round 0.
#[test]
fn live_single_stage_dag_replays_its_own_schedule() {
    let root = temp_root("single");
    let dfs = corpus_dfs();
    let dag = JobDag::new().stage(
        Arc::new(WordCount),
        JobConfig::default().with_trace(),
        StageInput::dfs("corpus"),
    );
    let run = run_dag(&cluster(&root, 1, 1), &dag, &dfs).unwrap();
    let _ = std::fs::remove_dir_all(&root);
    let trace = run.trace.as_ref().expect("trace requested");
    assert!(trace.entries.iter().all(|e| e.round == 0));
    replay_dag_trace("live-single", trace, &[]);
}

/// Case 3: a three-round chained DAG's trace replays given only the recorded
/// per-round origins: cross-round continuity is `begin_round` at the prior
/// round's makespan plus the unchanged placement recurrence.
#[test]
fn live_multi_round_dag_replays_with_recorded_origins() {
    let root = temp_root("multi");
    let dfs = corpus_dfs();
    let run = run_dag(
        &cluster(&root, 1, 1),
        &chained_dag(&FaultPlan::new(), true),
        &dfs,
    )
    .unwrap();
    let _ = std::fs::remove_dir_all(&root);
    let trace = run.trace.as_ref().expect("trace requested");
    assert_eq!(run.profile.num_rounds(), 3);
    let origins: Vec<VNanos> = run.profile.rounds.iter().map(|p| p.wall).collect();
    // A fault-free round's recorded makespan IS its last attempt's end —
    // the derivation the shipped-figure replay leans on.
    assert_eq!(derived_origins(trace), &origins[..2]);
    replay_dag_trace("live-multi", trace, &origins[..2]);
}

// ---------------------------------------------------------------------------
// 4. Workers × fetchers × seeded-fault sweep
// ---------------------------------------------------------------------------

/// The chaos shape matching this file's corpus/cluster geometry, derived
/// once from a fault-free run's first round. Later rounds have no more
/// map tasks or reducers than round 0, so a plan survivable for round 0
/// is survivable for every round.
fn chaos_shape() -> &'static ChaosShape {
    static SHAPE: OnceLock<ChaosShape> = OnceLock::new();
    SHAPE.get_or_init(|| {
        let run = run_chained("shape", &FaultPlan::new(), 1, 1);
        ChaosShape {
            map_tasks: run.profile.rounds[0].map_tasks.len(),
            reducers: 4,
            nodes: 6,
            max_attempts: 4,
            ..ChaosShape::default()
        }
    })
}

/// For seeded survivable fault plans, the chained DAG's final pairs and
/// whole-DAG timing-free signature are invariant across worker pools and
/// fetcher counts — cluster shape and fault timing never reach any
/// round's data.
#[test]
fn chained_dag_outputs_and_signatures_survive_the_sweep() {
    for seed in [0u64, 0x5eed, 0x00da_60de_7e57_ab1e] {
        let plan = FaultPlan::generate(seed, chaos_shape());
        let reference = run_chained(&format!("ref-{seed:016x}"), &plan, 1, 1);
        let pairs = reference.sorted_pairs();
        let signature = reference.profile.signature();
        assert_eq!(reference.profile.num_rounds(), 3);
        for (workers, fetchers) in [(2usize, 2usize), (1, 4), (4, 1)] {
            let run = run_chained(
                &format!("sweep-{seed:016x}-w{workers}f{fetchers}"),
                &plan,
                workers,
                fetchers,
            );
            assert_eq!(
                run.sorted_pairs(),
                pairs,
                "outputs diverged: seed={seed} workers={workers} fetchers={fetchers}"
            );
            assert_eq!(
                run.profile.signature(),
                signature,
                "signature diverged: seed={seed} workers={workers} fetchers={fetchers}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// 5. Streamed DAG trace export == batch export, byte for byte
// ---------------------------------------------------------------------------

/// The `--smoke` PageRank graph from the dag bench: a ring plus a second
/// irregular out-link, so the uniform start vector is not stationary and
/// tolerance 0 forces exactly `max_rounds` rounds.
fn pagerank_graph(pages: u64) -> Vec<u8> {
    let mut buf = String::new();
    let init = 1.0 / pages as f64;
    for p in 0..pages {
        let a = (p + 1) % pages;
        let b = (3 * p + 1) % pages;
        if a == b || p % 3 == 0 {
            buf.push_str(&format!("{p}|{init}|{a}\n"));
        } else {
            buf.push_str(&format!("{p}|{init}|{a},{b}\n"));
        }
    }
    buf.into_bytes()
}

/// `JobConfig::trace_stream` through the `DagExecutor`: the 3-round
/// PageRank trace streamed to disk round by round must equal the batch
/// `to_chrome_json()` byte for byte. Two *runs* cannot be diffed (virtual
/// durations come from measured real work), so the byte comparison pivots
/// on one run's entries pushed through the streaming writer with the
/// DAG-assembled edges; a second, fully streamed run then pins the
/// structural and data-level invariants end to end.
#[test]
fn streamed_dag_trace_export_matches_batch_bytes() {
    use textmr_apps::pagerank_to_convergence;
    use textmr_engine::trace::stream::TraceStreamWriter;

    let root = temp_root("stream");
    let pages = 24u64;
    let mut dfs = SimDfs::new(6, 256);
    dfs.put("graph", pagerank_graph(pages));
    let cluster = cluster(&root, 1, 2);
    let cfg = JobConfig::default().with_reducers(4).with_trace();

    // Batch run: three rounds, whole-DAG trace in memory.
    let batch = pagerank_to_convergence(&cluster, &cfg, &dfs, "graph", pages, 0, 3).unwrap();
    assert_eq!(batch.run.profile.num_rounds(), 3);
    let trace = batch.run.trace.as_ref().expect("trace requested");
    trace.check().unwrap();

    // Byte parity: this run's entries (per-round lanes, cross-round
    // hand-off edges and all) through the streaming writer must
    // reproduce the batch string exactly.
    let parity = root.join("parity.json");
    let mut w = TraceStreamWriter::create(
        parity.clone(),
        trace.nodes,
        trace.map_slots,
        trace.reduce_slots,
        trace.fetchers,
    )
    .unwrap();
    for e in &trace.entries {
        w.push_entry(e).unwrap();
    }
    w.finish(trace.wall, &trace.edges).unwrap();
    assert_eq!(
        std::fs::read_to_string(&parity).unwrap(),
        trace.to_chrome_json(),
        "streamed DAG export diverged from the batch bytes"
    );

    // End-to-end stream mode: the executor spools entries to disk as each
    // round retires, keeps no JobTrace, and the same ranks come out. The
    // file validates as Chrome-trace JSON and imports back into a trace
    // that passes the structural checks with all three rounds present.
    let path = root.join("streamed.json");
    let streamed = pagerank_to_convergence(
        &cluster,
        &cfg.clone().with_trace_stream(path.clone()),
        &dfs,
        "graph",
        pages,
        0,
        3,
    )
    .unwrap();
    assert!(
        streamed.run.trace.is_none(),
        "stream mode keeps no JobTrace"
    );
    assert_eq!(streamed.rounds, 3);
    assert_eq!(batch.run.sorted_pairs(), streamed.run.sorted_pairs());
    assert_eq!(
        batch.run.profile.signature(),
        streamed.run.profile.signature()
    );
    let file = std::fs::read_to_string(&path).unwrap();
    textmr_engine::trace::validate_chrome_trace(&file).unwrap();
    let imported = JobTrace::from_chrome_json(&file).unwrap();
    imported.check().unwrap();
    assert_eq!(
        (0..3)
            .map(|r| imported.entries.iter().filter(|e| e.round == r).count())
            .collect::<Vec<_>>(),
        (0..3)
            .map(|r| trace.entries.iter().filter(|e| e.round == r).count())
            .collect::<Vec<_>>(),
        "streamed file lost a round's entries"
    );
    let _ = std::fs::remove_dir_all(&root);
}
