//! Quickstart: run WordCount on a synthetic corpus, baseline vs fully
//! optimized (frequency-buffering + spill-matcher), and print the word
//! counts plus the virtual-time comparison.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use std::sync::Arc;
use textmr_apps::WordCount;
use textmr_core::{optimized, OptimizationConfig};
use textmr_data::text::CorpusConfig;
use textmr_engine::prelude::*;

fn main() {
    // 1. Generate a Zipf-distributed text corpus (a tiny stand-in for the
    //    paper's 8.5 GB Wikipedia dump).
    let corpus = CorpusConfig {
        lines: 20_000,
        vocab_size: 30_000,
        ..Default::default()
    };
    println!(
        "generating corpus: {} lines, vocab {}",
        corpus.lines, corpus.vocab_size
    );
    let data = corpus.generate_bytes();
    println!(
        "corpus size: {:.1} MiB",
        data.len() as f64 / (1 << 20) as f64
    );

    // 2. Store it in the simulated DFS of a 6-node cluster. The spill
    //    buffer is sized well below a split's intermediate output — the
    //    paper's regime (io.sort.mb ≪ map output), where each task spills
    //    several times and sort/spill/merge costs are worth attacking.
    let mut cluster = ClusterConfig::local();
    cluster.spill_buffer_bytes = 128 << 10;
    let mut dfs = SimDfs::new(cluster.nodes, 1 << 20);
    dfs.put("corpus", data);

    // 3. Run baseline.
    let job = Arc::new(WordCount);
    let base_cfg = optimized(
        JobConfig::default().with_reducers(4),
        OptimizationConfig::baseline(),
    );
    let base = run_job(&cluster, &base_cfg, job.clone(), &dfs, &[("corpus", 0)]).unwrap();

    // 4. Run with the paper's two optimizations — same job, no user-code
    //    changes.
    let opt_cfg = optimized(
        JobConfig::default().with_reducers(4),
        OptimizationConfig::default(),
    );
    let opt = run_job(&cluster, &opt_cfg, job, &dfs, &[("corpus", 0)]).unwrap();

    // 5. Results are identical.
    assert_eq!(
        base.sorted_pairs(),
        opt.sorted_pairs(),
        "optimizations must not change output"
    );

    // 6. Show the most frequent words.
    let mut counts: Vec<(String, u64)> = base
        .sorted_pairs()
        .into_iter()
        .map(|(k, v)| (String::from_utf8(k).unwrap(), decode_u64(&v).unwrap()))
        .collect();
    counts.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
    println!("\ntop 10 words:");
    for (w, c) in counts.iter().take(10) {
        println!("  {w:<10} {c}");
    }

    // 7. Compare virtual wall time and abstraction costs.
    let b = &base.profile;
    let o = &opt.profile;
    println!("\n                     baseline     optimized");
    println!(
        "virtual wall time    {:>9.1}ms  {:>9.1}ms  ({:+.1}%)",
        b.wall as f64 / 1e6,
        o.wall as f64 / 1e6,
        (o.wall as f64 / b.wall as f64 - 1.0) * 100.0
    );
    let (bo, oo) = (b.total_ops(), o.total_ops());
    println!(
        "abstraction cost     {:>9.1}ms  {:>9.1}ms",
        bo.abstraction_cost() as f64 / 1e6,
        oo.abstraction_cost() as f64 / 1e6
    );
    let absorbed: u64 = o.map_tasks.iter().map(|t| t.freq_absorbed_records).sum();
    let emitted: u64 = o.map_tasks.iter().map(|t| t.emitted_records).sum();
    println!(
        "frequency buffer     absorbed {absorbed} of {emitted} intermediate records ({:.1}%)",
        100.0 * absorbed as f64 / emitted.max(1) as f64
    );
}
