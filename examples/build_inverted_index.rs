//! Build an inverted index over a synthetic corpus and query it — the
//! paper's motivating text-centric workload end to end.
//!
//! InvertedIndex is *storage-intensive*: combining posting lists reduces
//! record count but barely shrinks bytes, so frequency-buffering's win
//! comes from cutting sort/serialization costs rather than I/O volume.
//!
//! ```sh
//! cargo run --release --example build_inverted_index
//! ```

use std::collections::HashMap;
use std::sync::Arc;
use textmr_apps::inverted_index::{decode_postings, InvertedIndex, Posting};
use textmr_core::{optimized, FreqBufferConfig, OptimizationConfig};
use textmr_data::text::CorpusConfig;
use textmr_engine::prelude::*;

fn main() {
    let corpus = CorpusConfig {
        lines: 10_000,
        vocab_size: 20_000,
        ..Default::default()
    };
    let data = corpus.generate_bytes();
    // Keep the raw text around so we can verify query hits against it.
    let lines: Vec<(u64, String)> = {
        let mut offset = 0u64;
        String::from_utf8(data.clone())
            .unwrap()
            .lines()
            .map(|l| {
                let entry = (offset, l.to_string());
                offset += l.len() as u64 + 1;
                entry
            })
            .collect()
    };

    let cluster = ClusterConfig::local();
    let mut dfs = SimDfs::new(cluster.nodes, 1 << 20);
    dfs.put("corpus", data);

    // Index with frequency-buffering tuned as the paper tunes text apps
    // (k = 3000, s = 0.01).
    let cfg = optimized(
        JobConfig::default().with_reducers(4),
        OptimizationConfig {
            frequency_buffering: Some(FreqBufferConfig {
                k: 3000,
                sampling_fraction: Some(0.01),
                ..Default::default()
            }),
            ..Default::default()
        },
    );
    let run = run_job(
        &cluster,
        &cfg,
        Arc::new(InvertedIndex),
        &dfs,
        &[("corpus", 0)],
    )
    .unwrap();

    let index: HashMap<String, Vec<Posting>> = run
        .sorted_pairs()
        .into_iter()
        .map(|(k, v)| (String::from_utf8(k).unwrap(), decode_postings(&v).unwrap()))
        .collect();
    println!("indexed {} distinct words", index.len());

    // Query a few words and verify each hit against the source text.
    for query in ["the", "of", "which"] {
        let Some(postings) = index.get(query) else {
            println!("'{query}': not found");
            continue;
        };
        println!("\n'{query}': {} occurrences; first 3:", postings.len());
        for p in postings.iter().take(3) {
            let line = &lines.iter().find(|(off, _)| *off == p.doc).unwrap().1;
            let word_at = line
                .split(|c: char| !c.is_alphanumeric())
                .filter(|w| !w.is_empty())
                .nth(p.pos as usize)
                .unwrap_or("?");
            println!("  doc@{:<8} pos {:<3} -> {:?}", p.doc, p.pos, word_at);
            assert_eq!(
                word_at.to_lowercase(),
                query,
                "index must point at the word"
            );
        }
    }

    // Output keys arrive sorted — the property that forces MapReduce to
    // really sort (Sec. II-A) and that an inverted index needs.
    for part in &run.outputs {
        assert!(
            part.windows(2).all(|w| w[0].0 <= w[1].0),
            "partition not sorted"
        );
    }
    println!("\nall partitions key-sorted ✓");
}
