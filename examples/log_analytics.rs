//! Relational-style log analytics: AccessLogSum + AccessLogJoin over
//! generated UserVisits/Rankings data (Pavlo et al.'s benchmark queries).
//!
//! The interesting observation the paper makes about these: optimizations
//! designed for text help only modestly here (little intermediate data,
//! flatter key skew) — but they never hurt. This example runs both queries
//! baseline and optimized and checks outputs match.
//!
//! ```sh
//! cargo run --release --example log_analytics
//! ```

use std::sync::Arc;
use textmr_apps::access_log::{decode_join_out, decode_revenue};
use textmr_apps::{AccessLogJoin, AccessLogSum, SOURCE_RANKINGS, SOURCE_VISITS};
use textmr_core::{optimized, FreqBufferConfig, OptimizationConfig};
use textmr_data::weblog::WeblogConfig;
use textmr_engine::prelude::*;

fn main() {
    let weblog = WeblogConfig {
        num_urls: 5_000,
        num_visits: 50_000,
        ..Default::default()
    };
    println!(
        "generating {} visits over {} urls",
        weblog.num_visits, weblog.num_urls
    );

    let cluster = ClusterConfig::local();
    let mut dfs = SimDfs::new(cluster.nodes, 1 << 20);
    dfs.put("visits", weblog.visits_bytes());
    dfs.put("rankings", weblog.rankings_bytes());

    // The paper tunes log processing with k = 10000, s = 0.1.
    let opt = OptimizationConfig {
        frequency_buffering: Some(FreqBufferConfig {
            k: 10_000,
            sampling_fraction: Some(0.1),
            ..Default::default()
        }),
        ..Default::default()
    };

    // ---- AccessLogSum: SELECT destURL, SUM(adRevenue) GROUP BY destURL ----
    let base_cfg = optimized(
        JobConfig::default().with_reducers(4),
        OptimizationConfig::baseline(),
    );
    let opt_cfg = optimized(JobConfig::default().with_reducers(4), opt.clone());
    let sum_base = run_job(
        &cluster,
        &base_cfg,
        Arc::new(AccessLogSum),
        &dfs,
        &[("visits", SOURCE_VISITS)],
    )
    .unwrap();
    let sum_opt = run_job(
        &cluster,
        &opt_cfg,
        Arc::new(AccessLogSum),
        &dfs,
        &[("visits", SOURCE_VISITS)],
    )
    .unwrap();
    assert_eq!(sum_base.sorted_pairs().len(), sum_opt.sorted_pairs().len());

    let mut revenue: Vec<(String, f64)> = sum_base
        .sorted_pairs()
        .into_iter()
        .map(|(k, v)| (String::from_utf8(k).unwrap(), decode_revenue(&v).unwrap()))
        .collect();
    revenue.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
    println!("\ntop 5 URLs by ad revenue:");
    for (url, rev) in revenue.iter().take(5) {
        println!("  {url:<45} ${rev:>10.2}");
    }

    // ---- AccessLogJoin: join visits with rankings on URL ------------------
    let inputs = [("visits", SOURCE_VISITS), ("rankings", SOURCE_RANKINGS)];
    let join_base = run_job(&cluster, &base_cfg, Arc::new(AccessLogJoin), &dfs, &inputs).unwrap();
    let join_opt = run_job(&cluster, &opt_cfg, Arc::new(AccessLogJoin), &dfs, &inputs).unwrap();
    assert_eq!(
        join_base.sorted_pairs(),
        join_opt.sorted_pairs(),
        "join must be unaffected"
    );

    let rows = join_base.sorted_pairs();
    println!(
        "\njoin produced {} (sourceIP, adRevenue, pageRank) rows; sample:",
        rows.len()
    );
    for (ip, v) in rows.iter().take(5) {
        let out = decode_join_out(v).unwrap();
        println!(
            "  {:<16} revenue ${:<8.2} pageRank {}",
            String::from_utf8_lossy(ip),
            out.ad_revenue,
            out.page_rank
        );
    }

    // ---- the paper's point: no harm on relational workloads ----------------
    let d_sum = sum_opt.profile.wall as f64 / sum_base.profile.wall as f64;
    let d_join = join_opt.profile.wall as f64 / join_base.profile.wall as f64;
    println!("\noptimized/baseline virtual wall time: sum {d_sum:.3}, join {d_join:.3}");
}
