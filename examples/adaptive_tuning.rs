//! Watch spill-matcher adapt — and compare against every fixed spill
//! fraction, plus the analytic model's prediction (Eq. 1).
//!
//! Runs WordCount with fixed spill fractions 0.1…0.9 and with the
//! adaptive controller, printing per-configuration map/support wait times.
//! The analytic model in `textmr_core::model` predicts the optimal
//! fraction from measured produce/consume rates; the adaptive controller
//! should land near it without being told anything.
//!
//! ```sh
//! cargo run --release --example adaptive_tuning
//! ```

use std::sync::Arc;
use textmr_apps::WordCount;
use textmr_core::model::RateModel;
use textmr_core::{optimized, OptimizationConfig, SpillMatcherConfig};
use textmr_data::text::CorpusConfig;
use textmr_engine::controller::fixed_spill_factory;
use textmr_engine::prelude::*;

fn main() {
    let corpus = CorpusConfig {
        lines: 15_000,
        vocab_size: 20_000,
        ..Default::default()
    };
    let data = corpus.generate_bytes();
    let mut cluster = ClusterConfig::local();
    cluster.spill_buffer_bytes = 512 << 10; // small buffer → many spills
    let mut dfs = SimDfs::new(cluster.nodes, 1 << 20);
    dfs.put("corpus", data);
    let job: Arc<dyn Job> = Arc::new(WordCount);

    println!(
        "{:<12} {:>12} {:>14} {:>14}",
        "config", "wall (ms)", "map wait (ms)", "supp wait (ms)"
    );

    let report = |label: &str, run: &JobRun| {
        let p = &run.profile;
        let pw: u64 = p.map_tasks.iter().map(|t| t.producer_wait).sum();
        let cw: u64 = p.map_tasks.iter().map(|t| t.consumer_wait).sum();
        println!(
            "{:<12} {:>12.1} {:>14.1} {:>14.1}",
            label,
            p.wall as f64 / 1e6,
            pw as f64 / 1e6,
            cw as f64 / 1e6
        );
    };

    // Fixed fractions.
    let mut best_fixed: Option<(f64, u64)> = None;
    for tenths in 1..=9u32 {
        let x = tenths as f64 / 10.0;
        let mut cfg = JobConfig::default().with_reducers(4);
        cfg.spill_controller = fixed_spill_factory(x);
        let run = run_job(&cluster, &cfg, job.clone(), &dfs, &[("corpus", 0)]).unwrap();
        report(&format!("fixed {x:.1}"), &run);
        if best_fixed.is_none() || run.profile.wall < best_fixed.unwrap().1 {
            best_fixed = Some((x, run.profile.wall));
        }
    }

    // Adaptive.
    let cfg = optimized(
        JobConfig::default().with_reducers(4),
        OptimizationConfig::spill_only(SpillMatcherConfig::default()),
    );
    let adaptive = run_job(&cluster, &cfg, job.clone(), &dfs, &[("corpus", 0)]).unwrap();
    report("adaptive", &adaptive);

    // What fraction did the model predict from observed rates?
    let t = &adaptive.profile.map_tasks[0];
    if let Some(last) = t.spills.last() {
        let p = last.bytes as f64 / last.produce_ns.max(1) as f64;
        let c = last.bytes as f64 / last.consume_ns.max(1) as f64;
        let model = RateModel {
            p,
            c,
            capacity: cluster.spill_buffer_bytes as f64,
        };
        println!(
            "\nmeasured rates p = {:.1} MB/s, c = {:.1} MB/s",
            p * 1e9 / (1 << 20) as f64,
            c * 1e9 / (1 << 20) as f64
        );
        println!(
            "Eq. 1 optimal fraction  x* = {:.3}",
            model.optimal_fraction()
        );
        println!("spill-matcher converged on {:.3}", last.fraction);
        let (bx, _) = best_fixed.unwrap();
        println!("best fixed fraction was {bx:.1} — found only by sweeping all nine");
    }
}
