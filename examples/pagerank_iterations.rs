//! Iterative PageRank: chain MapReduce jobs until the ranking converges,
//! with the paper's optimizations enabled throughout.
//!
//! Each iteration's reduce output is an adjacency line (`rank|links` keyed
//! by page), which feeds the next iteration's DFS input — the classic
//! Hadoop idiom for iterative graph algorithms. Demonstrates that
//! frequency-buffering and spill-matcher compose with job chaining and
//! that fixed-point rank arithmetic keeps iterations bit-deterministic.
//!
//! ```sh
//! cargo run --release --example pagerank_iterations
//! ```

use std::sync::Arc;
use textmr_apps::pagerank::{decode_output, PageRank};
use textmr_core::{optimized, OptimizationConfig};
use textmr_data::graph::GraphConfig;
use textmr_engine::codec::decode_u64;
use textmr_engine::prelude::*;

fn main() {
    let pages = 10_000usize;
    let graph = GraphConfig {
        pages,
        mean_out_degree: 8,
        ..Default::default()
    };
    println!("generating crawl: {pages} pages");
    let mut current = graph.generate_bytes();

    let mut cluster = ClusterConfig::local();
    cluster.spill_buffer_bytes = 256 << 10;
    let job = Arc::new(PageRank::new(pages as u64));
    let cfg = optimized(
        JobConfig::default().with_reducers(6),
        OptimizationConfig::default(),
    );

    let mut prev_top: Option<Vec<u64>> = None;
    for iter in 1..=8 {
        let mut dfs = SimDfs::new(cluster.nodes, 1 << 20);
        dfs.put("graph", current.clone());
        let run = run_job(&cluster, &cfg, job.clone(), &dfs, &[("graph", 0)]).unwrap();

        // Rebuild the next iteration's input from the output.
        let mut next = Vec::with_capacity(current.len());
        let mut ranked: Vec<(u64, f64)> = Vec::with_capacity(pages);
        for (key, value) in run.sorted_pairs() {
            let page = decode_u64(&key).unwrap();
            let (rank, links) = decode_output(&value).unwrap();
            ranked.push((page, rank));
            next.extend_from_slice(format!("{page}|{rank:.12}|{links}\n").as_bytes());
        }
        current = next;

        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
        let top: Vec<u64> = ranked.iter().take(10).map(|(p, _)| *p).collect();
        let total: f64 = ranked.iter().map(|(_, r)| r).sum();
        println!(
            "iter {iter}: wall {:>7.1}ms, total rank {:.6}, top pages {:?}",
            run.profile.wall as f64 / 1e6,
            total,
            &top[..5]
        );
        if prev_top.as_deref() == Some(&top) {
            println!("top-10 ranking stable after {iter} iterations ✓");
            break;
        }
        prev_top = Some(top);
    }

    // Zipf(1) in-link popularity ⇒ page 0 must win.
    let (page, rank) = {
        let line = std::str::from_utf8(&current)
            .unwrap()
            .lines()
            .next()
            .unwrap()
            .to_string();
        let mut f = line.split('|');
        (
            f.next().unwrap().parse::<u64>().unwrap(),
            f.next().unwrap().parse::<f64>().unwrap(),
        )
    };
    println!("\npage {page} rank {rank:.6} (most-linked page dominates, as generated)");
}
